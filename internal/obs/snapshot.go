package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's point-in-time state: the raw
// (non-cumulative) per-bucket counts alongside the bucket upper bounds.
// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
// Count is the sum of Counts, so the cumulative-bucket identity
// (the +Inf bucket equals the total count) holds exactly even when the
// snapshot is taken while writers are running.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile returns the same upper-bound estimate as Histogram.Quantile,
// computed over the snapshot.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Snapshot is a consistent, typed, name-sorted view of a registry's
// instruments, decoupled from the live atomics: both the text dump and
// the Prometheus exposition are formatted from it, so the registry mutex
// is never held during formatting or IO.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's instruments, each slice sorted by
// name. It is safe on a nil receiver (empty snapshot) and holds the
// registry mutex only while collecting instrument pointers, not while
// reading their values.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	type namedCounter struct {
		name string
		c    *Counter
	}
	type namedGauge struct {
		name string
		g    *Gauge
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	r.mu.Lock()
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.Unlock()

	s.Counters = make([]CounterSnapshot, len(counters))
	for i, nc := range counters {
		s.Counters[i] = CounterSnapshot{Name: nc.name, Value: nc.c.Value()}
	}
	s.Gauges = make([]GaugeSnapshot, len(gauges))
	for i, ng := range gauges {
		s.Gauges[i] = GaugeSnapshot{Name: ng.name, Value: ng.g.Value()}
	}
	s.Histograms = make([]HistogramSnapshot, len(hists))
	for i, nh := range hists {
		hs := HistogramSnapshot{
			Name:   nh.name,
			Bounds: append([]float64(nil), nh.h.bounds...),
			Counts: make([]int64, len(nh.h.counts)),
			Sum:    nh.h.Sum(),
		}
		for j := range nh.h.counts {
			c := nh.h.counts[j].Load()
			hs.Counts[j] = c
			hs.Count += c
		}
		s.Histograms[i] = hs
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Dump writes an expvar-style plain-text snapshot, one instrument per
// line, sorted by name: counters as integers, gauges as floats, and
// histograms as count/sum/quantile summaries. It formats a Snapshot, so
// the registry mutex is not held during formatting or IO.
func (r *Registry) Dump(w io.Writer) error {
	snap := r.Snapshot()
	lines := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	for _, c := range snap.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", c.Name, c.Value))
	}
	for _, g := range snap.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", g.Name, g.Value))
	}
	for _, h := range snap.Histograms {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%g p50=%g p95=%g p99=%g",
			h.Name, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
