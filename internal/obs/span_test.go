package obs

import (
	"testing"
)

// spanEvents filters the recorder's output to span start/end events.
func spanEvents(mem *MemRecorder) []Event {
	var out []Event
	for _, e := range mem.Events() {
		if e.Kind == KindSpanStart || e.Kind == KindSpanEnd {
			out = append(out, e)
		}
	}
	return out
}

func TestTracerStartEndPairing(t *testing.T) {
	mem := &MemRecorder{}
	tr := NewTracer(mem)
	if !tr.Enabled() {
		t.Fatal("tracer over an enabled recorder must be enabled")
	}

	run := tr.Start("run")
	doc := tr.Start("doc")
	doc.End()
	run.End()

	evs := spanEvents(mem)
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4 (2 starts + 2 ends)", len(evs))
	}
	if evs[0].Kind != KindSpanStart || evs[0].Name != "run" || evs[0].Parent != 0 {
		t.Errorf("run start wrong: %+v", evs[0])
	}
	if evs[1].Kind != KindSpanStart || evs[1].Name != "doc" || evs[1].Parent != run.ID() {
		t.Errorf("doc must be parented under run: %+v", evs[1])
	}
	if evs[2].Kind != KindSpanEnd || evs[2].Span != doc.ID() {
		t.Errorf("doc end wrong: %+v", evs[2])
	}
	if evs[3].Kind != KindSpanEnd || evs[3].Span != run.ID() || evs[3].Dur < 0 {
		t.Errorf("run end wrong: %+v", evs[3])
	}
	if run.ID() == doc.ID() || run.ID() == 0 || doc.ID() == 0 {
		t.Errorf("span ids must be unique and non-zero: run=%d doc=%d", run.ID(), doc.ID())
	}
}

func TestTracerScopeNesting(t *testing.T) {
	tr := NewTracer(&MemRecorder{})
	if tr.Scope() != nil || tr.ScopeID() != 0 {
		t.Fatal("fresh tracer must have no scope")
	}
	a := tr.Start("a")
	if tr.Scope() != a {
		t.Fatalf("scope = %v, want a", tr.Scope().Name())
	}
	b := tr.Start("b")
	if tr.Scope() != b || tr.ScopeID() != b.ID() {
		t.Fatalf("scope = %v, want b", tr.Scope().Name())
	}
	b.End()
	if tr.Scope() != a {
		t.Fatalf("ending b must restore a, got %v", tr.Scope().Name())
	}
	a.End()
	if tr.Scope() != nil {
		t.Fatalf("ending a must empty the scope, got %v", tr.Scope().Name())
	}
}

func TestSpanIDsUniqueAcrossTracers(t *testing.T) {
	// Multiple pipelines (each with its own Tracer) can feed one shared
	// trace, so ids must never collide across Tracer instances.
	tr1 := NewTracer(&MemRecorder{})
	tr2 := NewTracer(&MemRecorder{})
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range []*Tracer{tr1, tr2} {
			s := tr.Start("x")
			if seen[s.ID()] {
				t.Fatalf("duplicate span id %d", s.ID())
			}
			seen[s.ID()] = true
			s.End()
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	mem := &MemRecorder{}
	tr := NewTracer(mem)
	s := tr.Start("once")
	s.End()
	s.End()
	s.End()
	ends := 0
	for _, e := range mem.Events() {
		if e.Kind == KindSpanEnd {
			ends++
		}
	}
	if ends != 1 {
		t.Fatalf("end events = %d, want 1 (End must be idempotent)", ends)
	}
}

func TestSpanOutOfOrderChildEnd(t *testing.T) {
	// Ending the parent before the child is a bug in the instrumented
	// code, but it must not corrupt the scope stack: the parent's End is
	// out-of-order (it is not the innermost scope), so the scope stays on
	// the child until the child ends, and the child's End then restores
	// the parent's prev — never a dangling pointer to an ended span as
	// the new scope of later spans.
	mem := &MemRecorder{}
	tr := NewTracer(mem)
	parent := tr.Start("parent")
	child := tr.Start("child")

	parent.End() // out of order: child still open
	if tr.Scope() != child {
		t.Fatalf("parent's out-of-order End must leave the scope on child, got %v", tr.Scope().Name())
	}
	child.End()
	if got := tr.Scope(); got != parent {
		// child.End restores child.prev == parent; the stack stays
		// consistent even though parent already ended.
		t.Fatalf("child End must restore its recorded prev, got %v", got.Name())
	}
	// A new span must still parent deterministically and the trace stays
	// balanced: 3 starts, 3 ends.
	next := tr.Start("next")
	next.End()
	starts, ends := 0, 0
	for _, e := range spanEvents(mem) {
		if e.Kind == KindSpanStart {
			starts++
		} else {
			ends++
		}
	}
	if starts != 3 || ends != 3 {
		t.Fatalf("starts=%d ends=%d, want 3/3", starts, ends)
	}
}

func TestSpanAttributeOverwrite(t *testing.T) {
	mem := &MemRecorder{}
	tr := NewTracer(mem)
	s := tr.Start("attrs")
	s.SetAttr("strategy", "RSVM-IE").SetNum("docs", 1)
	s.SetNum("docs", 42)          // overwrite numeric
	s.SetAttr("strategy", "BAgg") // overwrite string
	s.SetNum("useful", 7)
	s.End()

	var end *Event
	for _, e := range mem.Events() {
		if e.Kind == KindSpanEnd {
			end = &e
			break
		}
	}
	if end == nil {
		t.Fatal("no span-end event")
	}
	if len(end.Attrs) != 3 {
		t.Fatalf("attrs = %v, want 3 entries (overwrites must not append)", end.Attrs)
	}
	got := map[string]Attr{}
	for _, a := range end.Attrs {
		got[a.Key] = a
	}
	if got["docs"].Num != 42 || got["strategy"].Str != "BAgg" || got["useful"].Num != 7 {
		t.Errorf("attrs wrong after overwrite: %v", end.Attrs)
	}
}

func TestSpanUnfinishedAtTraceClose(t *testing.T) {
	// An unfinished span leaves only its start event; nothing downstream
	// may block or panic on the missing end (exporters synthesize one).
	mem := &MemRecorder{}
	tr := NewTracer(mem)
	tr.Start("left-open")
	evs := mem.Events()
	if len(evs) != 1 || evs[0].Kind != KindSpanStart {
		t.Fatalf("events = %+v, want exactly the start", evs)
	}
	// The events must round-trip the JSONL layer unharmed.
	if evs[0].Span == 0 {
		t.Error("start event must carry the span id")
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer must be disabled")
	}
	if NewTracer(nil) != nil || NewTracer(Nop()) != nil {
		t.Error("NewTracer over nil/disabled recorders must return nil")
	}
	s := tr.Start("ignored")
	if s != nil {
		t.Fatal("nil tracer must return nil spans")
	}
	// Every span method must be safe on nil.
	s.SetAttr("k", "v").SetNum("n", 1).End()
	if s.ID() != 0 || s.Name() != "" {
		t.Error("nil span accessors must return zero values")
	}
	if tr.Scope() != nil || tr.ScopeID() != 0 {
		t.Error("nil tracer scope must be empty")
	}
}
