package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// SanitizeMetricName maps an arbitrary instrument name onto the
// Prometheus metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*: every
// invalid byte becomes '_', a leading digit gets a '_' prefix, and the
// empty name becomes "_". The mapping is idempotent — sanitizing an
// already-sanitized name returns it unchanged — so exposition names
// survive round-trips through external systems that re-sanitize.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float64 the way the Prometheus text format
// expects: shortest round-trippable decimal, with the special values
// spelled +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format version 0.0.4: counters and gauges as single samples,
// histograms as cumulative `le`-labelled buckets (always ending with
// the implicit +Inf bucket, whose value equals `_count`) plus `_sum`
// and `_count` samples. Instrument names are passed through
// SanitizeMetricName; each family is preceded by HELP (carrying the
// original registry name) and TYPE comment lines.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	family := func(orig, typ string) string {
		name := SanitizeMetricName(orig)
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(helpEscape(orig))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(typ)
		b.WriteByte('\n')
		return name
	}
	for _, c := range s.Counters {
		name := family(c.Name, "counter")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(c.Value, 10))
		b.WriteByte('\n')
	}
	for _, g := range s.Gauges {
		name := family(g.Name, "gauge")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(g.Value))
		b.WriteByte('\n')
	}
	for _, h := range s.Histograms {
		name := family(h.Name, "histogram")
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			b.WriteString(name)
			b.WriteString(`_bucket{le="`)
			b.WriteString(formatFloat(bound))
			b.WriteString(`"} `)
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
		// The overflow bucket closes the cumulative series at +Inf; by
		// construction it equals Count (Snapshot sums the raw buckets).
		cum += h.Counts[len(h.Counts)-1]
		b.WriteString(name)
		b.WriteString(`_bucket{le="+Inf"} `)
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_sum ")
		b.WriteString(formatFloat(h.Sum))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_count ")
		b.WriteString(strconv.FormatInt(h.Count, 10))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// helpEscape escapes a HELP docstring per the text format (backslash
// and newline only).
func helpEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
