package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) (*Server, *Registry, *StreamRecorder, *RunTracker) {
	t.Helper()
	reg := NewRegistry()
	stream := NewStreamRecorder(64)
	runs := &RunTracker{}
	return NewServer(ServerOptions{Registry: reg, Stream: stream, Runs: runs}), reg, stream, runs
}

func TestServerMetricsEndpoint(t *testing.T) {
	srv, reg, _, _ := testServer(t)
	reg.Counter("pipeline.docs_processed").Add(5)
	reg.Histogram("pipeline.rank_seconds", []float64{0.1}).Observe(0.05)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	types, samples := promParse(t, body.String())
	if types["pipeline_docs_processed"] != "counter" {
		t.Errorf("missing counter family: %v", types)
	}
	found := false
	for _, s := range samples {
		if s.name == "pipeline_docs_processed" && s.value == 5 {
			found = true
		}
	}
	if !found {
		t.Error("counter sample missing from /metrics")
	}
	groupHistograms(t, types, samples) // validates bucket/type pairing
}

func TestServerHealthzAndRuns(t *testing.T) {
	srv, _, _, runs := testServer(t)
	runs.Record(Event{Kind: KindRunStarted, Name: "RSVM-IE", N: 1000, Val: 80, T: 1})
	runs.Record(Event{Kind: KindSampleLabelled, Useful: true})
	runs.Record(Event{Kind: KindDocExtracted, Useful: true})
	runs.Record(Event{Kind: KindDocExtracted, Useful: false})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["runs_active"].(float64) != 1 {
		t.Errorf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var got []RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got) != 1 {
		t.Fatalf("runs = %d, want 1", len(got))
	}
	r := got[0]
	if r.Strategy != "RSVM-IE" || r.CollectionSize != 1000 || r.TotalUseful != 80 {
		t.Errorf("run header wrong: %+v", r)
	}
	if r.SampleDocs != 1 || r.SampleUseful != 1 || r.DocsProcessed != 2 || r.UsefulFound != 1 {
		t.Errorf("run counts wrong: %+v", r)
	}
	if !r.Running {
		t.Error("run must still be running")
	}
	// recall = 1 useful / (80 total - 1 sample) = 1/79
	if want := 1.0 / 79; r.Recall < want-1e-12 || r.Recall > want+1e-12 {
		t.Errorf("recall = %g, want %g", r.Recall, want)
	}
}

func TestServerEventsSSE(t *testing.T) {
	srv, _, stream, _ := testServer(t)
	stream.Record(Event{Kind: KindRunStarted, Name: "RSVM-IE"})
	stream.Record(Event{Kind: KindDocExtracted, Doc: 7, Useful: true})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// A live event recorded after the subscription must also arrive.
	stream.Record(Event{Kind: KindRunFinished})

	sc := bufio.NewScanner(resp.Body)
	var ids []string
	var kinds []Kind
	for sc.Scan() && len(kinds) < 3 {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		}
		if strings.HasPrefix(line, "data: ") {
			var e Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			kinds = append(kinds, e.Kind)
		}
	}
	if len(kinds) != 3 || kinds[0] != KindRunStarted || kinds[1] != KindDocExtracted || kinds[2] != KindRunFinished {
		t.Fatalf("SSE kinds = %v (replay must precede live events)", kinds)
	}
	if len(ids) != 3 || ids[0] != "1" || ids[1] != "2" || ids[2] != "3" {
		t.Fatalf("SSE ids = %v, want seq order 1,2,3", ids)
	}
}

func TestServerEventsWithoutStream(t *testing.T) {
	srv := NewServer(ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	// /metrics with no registry still serves an empty exposition.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("metrics status = %d, want 200", resp.StatusCode)
	}
}

func TestServerStartServesAndCloses(t *testing.T) {
	srv, reg, _, _ := testServer(t)
	reg.Counter("x").Inc()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz over real listener = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server must stop serving after Close")
	}
}

func TestServerAlertsEndpoint(t *testing.T) {
	wd := Watch(nil, WatchdogOptions{MaxFireRate: 0.5, FireWindow: 1})
	wd.Record(Event{Kind: KindRunStarted})
	wd.Record(Event{Kind: KindDetectorDecision, Fired: true})

	srv := NewServer(ServerOptions{Watchdog: wd})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var alerts []Alert
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(alerts) != 1 || alerts[0].Rule != RuleFireRate {
		t.Fatalf("alerts = %+v, want one fire-rate alert", alerts)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["alerts"].(float64) != 1 {
		t.Errorf("healthz alerts = %v, want 1", health["alerts"])
	}
}

func TestServerAlertsWithoutWatchdog(t *testing.T) {
	srv := NewServer(ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var alerts []Alert
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatalf("/alerts without a watchdog must still be valid JSON: %v", err)
	}
	if len(alerts) != 0 {
		t.Errorf("alerts = %+v, want empty", alerts)
	}
}

// TestServerShutdownLeaksNoGoroutines is the shutdown audit: Close must
// reap the runtime sampler and every /events SSE handler even while a
// subscriber is still connected.
func TestServerShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	stream := NewStreamRecorder(16)
	srv := NewServer(ServerOptions{Registry: reg, Stream: stream, RuntimeInterval: time.Millisecond})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Connect a live SSE subscriber and prove the handler is pumping
	// before we pull the plug.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	resp, err := client.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream.Record(Event{Kind: KindRunStarted})
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("SSE stream not live: %v", err)
	}
	if stream.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", stream.Subscribers())
	}

	// Close with the subscriber still attached: the connection drops, the
	// handler goroutine unsubscribes and exits, the sampler stops.
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	resp.Body.Close()
	tr.CloseIdleConnections()

	if stream.Subscribers() != 0 {
		t.Errorf("subscribers after Close = %d, want 0", stream.Subscribers())
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after Close = %d, want <= %d (server leaked)", got, before)
	}
}

func TestRunTrackerMultipleRunsAndPprofRoutes(t *testing.T) {
	srv, _, _, runs := testServer(t)
	for i := 0; i < 2; i++ {
		runs.Record(Event{Kind: KindRunStarted, Name: "BAgg-IE", N: 10})
		runs.Record(Event{Kind: KindDocExtracted, Useful: true})
		runs.Record(Event{Kind: KindRankFinished})
		runs.Record(Event{Kind: KindModelUpdated})
		runs.Record(Event{Kind: KindRunFinished, T: int64(i + 1)})
	}
	rs := runs.Runs()
	if len(rs) != 2 {
		t.Fatalf("runs = %d, want 2", len(rs))
	}
	for i, r := range rs {
		if r.ID != i || r.Running || r.Updates != 1 || r.Reranks != 1 || r.DocsProcessed != 1 {
			t.Errorf("run %d state wrong: %+v", i, r)
		}
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof cmdline status = %d", resp.StatusCode)
	}
}
