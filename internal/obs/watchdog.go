package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The watchdog rule names (RuleRecallSlope, RuleFireRate,
// RuleStepLatency, RuleFaultRate) are declared in names.go with the
// rest of the obs name registry.

// Alert is one SLO violation observed by the Watchdog, retained for the
// /alerts endpoint. The same information is emitted into the event
// stream as a KindAlert event.
type Alert struct {
	// T is the wall-clock time of the violation (Unix nanoseconds).
	T int64 `json:"t"`
	// Run is the 0-based index of the run the violation occurred in.
	Run int `json:"run"`
	// Rule names the violated rule (RuleRecallSlope, ...).
	Rule string `json:"rule"`
	// Value is the observed statistic, Threshold the configured bound.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Docs is the ranked-document position at the violation.
	Docs int `json:"docs"`
	// Message is a human-readable one-liner.
	Message string `json:"message"`
}

// WatchdogOptions configures the SLO rules. A zero threshold disables
// its rule; zero windows take the listed defaults. Each rule only
// evaluates once its window is full, so a run shorter than the window
// never alerts.
type WatchdogOptions struct {
	// MinRecallSlope is the floor on useful-docs-per-document over the
	// trailing RecallWindow ranked documents (0 disables).
	MinRecallSlope float64
	// RecallWindow is the slope window in documents (default 200).
	RecallWindow int
	// MaxFireRate is the ceiling on the fired fraction over the
	// trailing FireWindow detector decisions (0 disables).
	MaxFireRate float64
	// FireWindow is the fire-rate window in decisions (default 50).
	FireWindow int
	// MaxStepP99 is the ceiling on the p99 per-document step duration
	// over the trailing LatencyWindow documents (0 disables).
	MaxStepP99 time.Duration
	// LatencyWindow is the latency window in documents (default 200).
	LatencyWindow int
	// MaxFaultRate is the ceiling on the faulted fraction over the
	// trailing FaultWindow extraction-attempt outcomes (0 disables).
	MaxFaultRate float64
	// FaultWindow is the fault-rate window in attempt outcomes
	// (default 100).
	FaultWindow int
	// Cooldown is the minimum number of ranked documents between two
	// alerts of the same rule (default: the rule's window), preventing
	// a sustained violation from flooding the stream.
	Cooldown int
}

func (o *WatchdogOptions) defaults() {
	if o.RecallWindow <= 0 {
		o.RecallWindow = 200
	}
	if o.FireWindow <= 0 {
		o.FireWindow = 50
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 200
	}
	if o.FaultWindow <= 0 {
		o.FaultWindow = 100
	}
}

// Enabled reports whether any rule is active.
func (o WatchdogOptions) Enabled() bool {
	return o.MinRecallSlope > 0 || o.MaxFireRate > 0 || o.MaxStepP99 > 0 ||
		o.MaxFaultRate > 0
}

// Watchdog is a Recorder middleware that tails the live event stream,
// folds it into sliding-window health statistics, and emits structured
// KindAlert events into the same stream when a configured threshold is
// crossed. It wraps the downstream recorder (typically the Tee feeding
// the trace file, the SSE stream, and the run tracker), so alerts are
// stamped centrally and appear in every sink exactly like pipeline
// events. Alerts are additionally retained in memory for /alerts.
type Watchdog struct {
	next Recorder
	opts WatchdogOptions

	mu        sync.Mutex
	run       int // 0-based run index (first run-started makes it 0)
	docs      int // ranked documents in the current run
	useful    []bool
	fired     []bool
	lats      []time.Duration
	faults    []bool
	lastAlert map[string]int // rule -> docs position of its last alert
	alerts    []Alert
}

// Watch wraps next with an SLO watchdog. The returned recorder must be
// the one handed to the pipeline: events flow through it into next.
func Watch(next Recorder, opts WatchdogOptions) *Watchdog {
	opts.defaults()
	if next == nil {
		next = Nop()
	}
	return &Watchdog{
		next: next, opts: opts, run: -1,
		lastAlert: make(map[string]int),
	}
}

// Enabled implements Recorder.
func (w *Watchdog) Enabled() bool { return true }

// Record implements Recorder: the event is forwarded downstream first
// (so sinks see pipeline events in pipeline order), then evaluated; any
// resulting alert events follow immediately after their trigger.
func (w *Watchdog) Record(e Event) {
	w.next.Record(e)
	for _, a := range w.observe(e) {
		w.next.Record(Event{
			Kind: KindAlert, Name: a.Rule, Val: a.Value, Limit: a.Threshold,
			N: a.Docs,
		})
	}
}

// observe folds one event into the windows and returns any alerts it
// triggered. Alert events themselves are ignored (the watchdog may be
// fed its own output when recorders are layered).
func (w *Watchdog) observe(e Event) []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch e.Kind {
	case KindRunStarted:
		w.run++
		w.docs = 0
		w.useful = w.useful[:0]
		w.fired = w.fired[:0]
		w.lats = w.lats[:0]
		w.faults = w.faults[:0]
		w.lastAlert = make(map[string]int)
		return nil
	case KindDocExtracted:
		w.docs++
		w.useful = slide(w.useful, e.Useful, w.opts.RecallWindow)
		w.lats = slide(w.lats, e.Dur, w.opts.LatencyWindow)
		w.faults = slide(w.faults, false, w.opts.FaultWindow)
		var out []Alert
		if a := w.checkRecall(); a != nil {
			out = append(out, *a)
		}
		if a := w.checkLatency(); a != nil {
			out = append(out, *a)
		}
		if a := w.checkFaultRate(); a != nil {
			out = append(out, *a)
		}
		return out
	case KindExtractFault:
		w.faults = slide(w.faults, true, w.opts.FaultWindow)
		if a := w.checkFaultRate(); a != nil {
			return []Alert{*a}
		}
	case KindDetectorDecision:
		w.fired = slide(w.fired, e.Fired, w.opts.FireWindow)
		if a := w.checkFireRate(); a != nil {
			return []Alert{*a}
		}
	}
	return nil
}

// slide appends v and drops the head once the window exceeds n.
func slide[T any](win []T, v T, n int) []T {
	win = append(win, v)
	if len(win) > n {
		copy(win, win[1:])
		win = win[:len(win)-1]
	}
	return win
}

func (w *Watchdog) checkRecall() *Alert {
	if w.opts.MinRecallSlope <= 0 || len(w.useful) < w.opts.RecallWindow {
		return nil
	}
	n := 0
	for _, u := range w.useful {
		if u {
			n++
		}
	}
	slope := float64(n) / float64(len(w.useful))
	if slope >= w.opts.MinRecallSlope {
		return nil
	}
	return w.alert(RuleRecallSlope, slope, w.opts.MinRecallSlope, w.opts.RecallWindow,
		fmt.Sprintf("recall slope %.4f useful/doc over last %d docs is below the %.4f floor",
			slope, len(w.useful), w.opts.MinRecallSlope))
}

func (w *Watchdog) checkFireRate() *Alert {
	if w.opts.MaxFireRate <= 0 || len(w.fired) < w.opts.FireWindow {
		return nil
	}
	n := 0
	for _, f := range w.fired {
		if f {
			n++
		}
	}
	rate := float64(n) / float64(len(w.fired))
	if rate <= w.opts.MaxFireRate {
		return nil
	}
	return w.alert(RuleFireRate, rate, w.opts.MaxFireRate, w.opts.FireWindow,
		fmt.Sprintf("detector fired on %.0f%% of the last %d decisions (ceiling %.0f%%)",
			rate*100, len(w.fired), w.opts.MaxFireRate*100))
}

func (w *Watchdog) checkLatency() *Alert {
	if w.opts.MaxStepP99 <= 0 || len(w.lats) < w.opts.LatencyWindow {
		return nil
	}
	sorted := make([]time.Duration, len(w.lats))
	copy(sorted, w.lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	p99 := sorted[idx-1]
	if p99 <= w.opts.MaxStepP99 {
		return nil
	}
	return w.alert(RuleStepLatency, p99.Seconds(), w.opts.MaxStepP99.Seconds(), w.opts.LatencyWindow,
		fmt.Sprintf("p99 step latency %v over last %d docs exceeds %v",
			p99, len(w.lats), w.opts.MaxStepP99))
}

func (w *Watchdog) checkFaultRate() *Alert {
	if w.opts.MaxFaultRate <= 0 || len(w.faults) < w.opts.FaultWindow {
		return nil
	}
	n := 0
	for _, f := range w.faults {
		if f {
			n++
		}
	}
	rate := float64(n) / float64(len(w.faults))
	if rate <= w.opts.MaxFaultRate {
		return nil
	}
	return w.alert(RuleFaultRate, rate, w.opts.MaxFaultRate, w.opts.FaultWindow,
		fmt.Sprintf("extraction faulted on %.0f%% of the last %d attempt outcomes (ceiling %.0f%%)",
			rate*100, len(w.faults), w.opts.MaxFaultRate*100))
}

// alert records the violation unless the rule is still cooling down.
func (w *Watchdog) alert(rule string, value, threshold float64, window int, msg string) *Alert {
	cool := w.opts.Cooldown
	if cool <= 0 {
		cool = window
	}
	if last, ok := w.lastAlert[rule]; ok && w.docs-last < cool {
		return nil
	}
	w.lastAlert[rule] = w.docs
	run := w.run
	if run < 0 {
		run = 0 // stream joined mid-run
	}
	a := Alert{
		T: nowUnixNano(), Run: run, Rule: rule,
		Value: value, Threshold: threshold, Docs: w.docs, Message: msg,
	}
	w.alerts = append(w.alerts, a)
	return &a
}

// Alerts returns a snapshot of every alert raised so far, oldest first.
func (w *Watchdog) Alerts() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alert, len(w.alerts))
	copy(out, w.alerts)
	return out
}
