package obs

import (
	"bytes"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name  string // full sample name (including _bucket/_sum/_count)
	le    string // le label value, "" when unlabelled
	value float64
}

// promParse is a minimal parser of the Prometheus text exposition
// format v0.0.4 covering what WritePrometheus emits: HELP/TYPE comment
// lines and samples with at most an le label. It fails the test on any
// line it cannot parse, so it doubles as a format validator.
func promParse(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if !nameRe.MatchString(name) {
				t.Fatalf("line %d: invalid family name %q", ln+1, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		var s promSample
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			s.name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			label := rest[i+1 : j]
			if !strings.HasPrefix(label, `le="`) || !strings.HasSuffix(label, `"`) {
				t.Fatalf("line %d: unexpected label %q", ln+1, label)
			}
			s.le = strings.TrimSuffix(strings.TrimPrefix(label, `le="`), `"`)
			rest = strings.TrimSpace(rest[j+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			s.name, rest = fields[0], fields[1]
		}
		if !nameRe.MatchString(s.name) {
			t.Fatalf("line %d: invalid sample name %q", ln+1, s.name)
		}
		v, err := parsePromValue(rest)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, rest, err)
		}
		s.value = v
		samples = append(samples, s)
	}
	return types, samples
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// histFamily groups the parsed samples of one histogram family.
type histFamily struct {
	buckets []promSample // in exposition order
	sum     float64
	count   float64
}

func groupHistograms(t *testing.T, types map[string]string, samples []promSample) map[string]*histFamily {
	t.Helper()
	hists := make(map[string]*histFamily)
	for name, typ := range types {
		if typ == "histogram" {
			hists[name] = &histFamily{}
		}
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			base := strings.TrimSuffix(s.name, "_bucket")
			h, ok := hists[base]
			if !ok {
				t.Fatalf("bucket sample %q has no histogram TYPE", s.name)
			}
			h.buckets = append(h.buckets, s)
		case strings.HasSuffix(s.name, "_sum") && hists[strings.TrimSuffix(s.name, "_sum")] != nil:
			hists[strings.TrimSuffix(s.name, "_sum")].sum = s.value
		case strings.HasSuffix(s.name, "_count") && hists[strings.TrimSuffix(s.name, "_count")] != nil:
			hists[strings.TrimSuffix(s.name, "_count")].count = s.value
		default:
			if types[s.name] == "" {
				t.Fatalf("sample %q has no TYPE declaration", s.name)
			}
		}
	}
	return hists
}

// expose writes the registry's snapshot and parses it back.
func expose(t *testing.T, reg *Registry) (map[string]string, []promSample) {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return promParse(t, buf.String())
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline.docs_processed").Add(1234)
	reg.Counter("pipeline.updates").Add(7)
	reg.Gauge("pipeline.pool_size").Set(987.5)
	reg.Gauge("time.total_seconds").Set(0.25)
	h := reg.Histogram("pipeline.rank_seconds", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	types, samples := expose(t, reg)
	want := map[string]float64{
		"pipeline_docs_processed": 1234,
		"pipeline_updates":        7,
		"pipeline_pool_size":      987.5,
		"time_total_seconds":      0.25,
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.le == "" && !strings.HasSuffix(s.name, "_sum") && !strings.HasSuffix(s.name, "_count") {
			got[s.name] = s.value
		}
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %g, want %g", name, got[name], w)
		}
	}
	if types["pipeline_docs_processed"] != "counter" || types["pipeline_pool_size"] != "gauge" ||
		types["pipeline_rank_seconds"] != "histogram" {
		t.Errorf("unexpected TYPE map: %v", types)
	}

	hists := groupHistograms(t, types, samples)
	hf := hists["pipeline_rank_seconds"]
	if hf == nil {
		t.Fatal("histogram family missing")
	}
	if hf.count != 6 {
		t.Errorf("_count = %g, want 6", hf.count)
	}
	if math.Abs(hf.sum-5.5605) > 1e-9 {
		t.Errorf("_sum = %g, want 5.5605", hf.sum)
	}
	wantBuckets := []float64{1, 3, 4, 5, 6}
	if len(hf.buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %d, want %d", len(hf.buckets), len(wantBuckets))
	}
	for i, b := range hf.buckets {
		if b.value != wantBuckets[i] {
			t.Errorf("bucket %d (le=%s) = %g, want %g", i, b.le, b.value, wantBuckets[i])
		}
	}
}

// TestPrometheusHistogramInvariants checks the exposition-level
// invariants over randomized observations: cumulative buckets are
// monotone non-decreasing, the series ends at le="+Inf", and the +Inf
// bucket equals _count.
func TestPrometheusHistogramInvariants(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("inv.hist", nil) // default latency buckets
	for i := 0; i < 5000; i++ {
		h.Observe(float64(i%97) * 3e-4)
	}
	empty := reg.Histogram("inv.empty", []float64{1, 2, 3})
	_ = empty

	types, samples := expose(t, reg)
	hists := groupHistograms(t, types, samples)
	if len(hists) != 2 {
		t.Fatalf("histogram families = %d, want 2", len(hists))
	}
	for name, hf := range hists {
		if len(hf.buckets) == 0 {
			t.Fatalf("%s: no buckets", name)
		}
		prev := math.Inf(-1)
		prevBound := math.Inf(-1)
		for i, b := range hf.buckets {
			if b.value < prev {
				t.Errorf("%s bucket %d: cumulative count decreased (%g -> %g)", name, i, prev, b.value)
			}
			prev = b.value
			bound, err := parsePromValue(b.le)
			if err != nil {
				t.Fatalf("%s bucket %d: bad le %q", name, i, b.le)
			}
			if bound <= prevBound {
				t.Errorf("%s bucket %d: le bounds not increasing", name, i)
			}
			prevBound = bound
		}
		last := hf.buckets[len(hf.buckets)-1]
		if last.le != "+Inf" {
			t.Errorf("%s: last bucket le = %q, want +Inf", name, last.le)
		}
		if last.value != hf.count {
			t.Errorf("%s: +Inf bucket %g != _count %g", name, last.value, hf.count)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"pipeline.rank_seconds": "pipeline_rank_seconds",
		"already_valid:name":    "already_valid:name",
		"9starts.with.digit":    "_9starts_with_digit",
		"":                      "_",
		"spaces and-dashes":     "spaces_and_dashes",
		"ünïcode":               "__n__code",
	}
	valid := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for in, want := range cases {
		got := SanitizeMetricName(in)
		if got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
		if !valid.MatchString(got) {
			t.Errorf("SanitizeMetricName(%q) = %q is not a valid metric name", in, got)
		}
		// Round-trip: sanitizing a sanitized name is the identity.
		if again := SanitizeMetricName(got); again != got {
			t.Errorf("sanitization not idempotent: %q -> %q -> %q", in, got, again)
		}
	}
}

func TestSnapshotTypedAndSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Inc()
	reg.Counter("a.first").Add(3)
	reg.Gauge("m.gauge").Set(1.5)
	reg.Histogram("h.one", []float64{1}).Observe(0.5)
	reg.Histogram("a.hist", []float64{2}).Observe(3)

	s := reg.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.last" {
		t.Errorf("counters not sorted: %+v", s.Counters)
	}
	if s.Counters[0].Value != 3 {
		t.Errorf("a.first = %d, want 3", s.Counters[0].Value)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "a.hist" || s.Histograms[1].Name != "h.one" {
		t.Errorf("histograms not sorted: %+v", s.Histograms)
	}
	// a.hist observed 3 with bounds [2]: overflow bucket.
	ah := s.Histograms[0]
	if ah.Count != 1 || ah.Counts[len(ah.Counts)-1] != 1 {
		t.Errorf("overflow accounting wrong: %+v", ah)
	}
	if q := ah.Quantile(0.5); !math.IsInf(q, 1) {
		t.Errorf("snapshot quantile = %g, want +Inf", q)
	}

	var nilReg *Registry
	empty := nilReg.Snapshot()
	if len(empty.Counters)+len(empty.Gauges)+len(empty.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

// TestDumpMatchesSnapshot pins Dump to the Snapshot read path: the
// legacy text format must render exactly the snapshot's values.
func TestDumpMatchesSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(42)
	reg.Gauge("g").Set(2.5)
	reg.Histogram("h", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := reg.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	want := "c 42\ng 2.5\nh count=1 sum=1.5 p50=2 p95=2 p99=2\n"
	if buf.String() != want {
		t.Errorf("Dump = %q, want %q", buf.String(), want)
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	var nilReg *Registry
	if err := WritePrometheus(&buf, nilReg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot must expose nothing, got %q", buf.String())
	}
}

// BenchmarkHistogramObserve is the CI benchmark baseline for the
// enabled hot-path instrument write (atomic ops, zero allocations).
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench.observe", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

// BenchmarkRecorderRecord is the CI benchmark baseline for the enabled
// trace write (JSONL encoding to a discarded buffer).
func BenchmarkRecorderRecord(b *testing.B) {
	rec := NewJSONLRecorder(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(Event{Kind: KindDocExtracted, Doc: int64(i), Useful: i%3 == 0, Dur: 1})
	}
	if err := rec.Flush(); err != nil {
		b.Fatal(err)
	}
}
