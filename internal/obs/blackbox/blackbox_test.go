package blackbox

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"adaptiverank/internal/obs"
)

func newRing(t *testing.T, opts Options) *Ring {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestRingDropOldestBounds(t *testing.T) {
	r := newRing(t, Options{RingSize: 8})
	for i := 0; i < 20; i++ {
		r.Record(obs.Event{Kind: obs.KindDocExtracted, Doc: int64(i)})
	}
	s := r.snapshot()
	if len(s.events) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(s.events))
	}
	if s.total != 20 || s.dropped != 12 {
		t.Errorf("total=%d dropped=%d, want 20/12", s.total, s.dropped)
	}
	// Oldest first: docs 12..19, self-stamped seq 13..20.
	for i, e := range s.events {
		if e.Doc != int64(12+i) || e.Seq != int64(13+i) {
			t.Fatalf("event %d: doc=%d seq=%d, want doc=%d seq=%d", i, e.Doc, e.Seq, 12+i, 13+i)
		}
		if e.T == 0 {
			t.Fatalf("event %d not timestamped", i)
		}
	}
}

func TestStampedEventsPassThrough(t *testing.T) {
	// Behind a Tee events arrive stamped; the ring must keep them as-is.
	r := newRing(t, Options{})
	r.Record(obs.Event{Kind: obs.KindRunStarted, Seq: 41, T: 99})
	s := r.snapshot()
	if s.events[0].Seq != 41 || s.events[0].T != 99 {
		t.Errorf("stamped event rewritten: %+v", s.events[0])
	}
}

func TestSpanAndDecisionTracking(t *testing.T) {
	r := newRing(t, Options{Decisions: 2})
	r.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanRun, Span: 1})
	r.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanRank, Span: 2, Parent: 1})
	r.Record(obs.Event{Kind: obs.KindSpanEnd, Name: obs.SpanRank, Span: 2, Parent: 1})
	r.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanBatch, Span: 3, Parent: 1})
	for i := 1; i <= 3; i++ {
		r.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: "modc", Val: float64(i)})
	}
	st := r.State()
	if len(st.Spans) != 2 || st.Spans[0].Name != obs.SpanRun || st.Spans[1].Name != obs.SpanBatch {
		t.Errorf("active spans: %+v", st.Spans)
	}
	if len(st.Decisions) != 2 || st.Decisions[0].Val != 2 || st.Decisions[1].Val != 3 {
		t.Errorf("decision tail: %+v", st.Decisions)
	}
}

func TestTriggerReasons(t *testing.T) {
	cases := []struct {
		e    obs.Event
		want string
	}{
		{obs.Event{Kind: obs.KindWorkerPanic, Name: obs.PanicSiteScore}, obs.DumpReasonWorkerPanic},
		{obs.Event{Kind: obs.KindExtractFault, Name: obs.FaultPanic}, obs.DumpReasonExtractPanic},
		{obs.Event{Kind: obs.KindExtractFault, Name: obs.FaultTimeout}, ""},
		{obs.Event{Kind: obs.KindAlert, Name: obs.RuleFaultRate}, obs.DumpReasonAlert},
		{obs.Event{Kind: obs.KindDocExtracted}, ""},
	}
	for _, c := range cases {
		if got := triggerReason(c.e); got != c.want {
			t.Errorf("triggerReason(%s/%s) = %q, want %q", c.e.Kind, c.e.Name, got, c.want)
		}
	}
}

func TestWorkerPanicDumpsBundle(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	reg.Counter(obs.MetricPipelineWorkerPanics).Inc()
	r := newRing(t, Options{Dir: dir, RunID: "run-x", Fingerprint: "fp-1", Registry: reg})
	r.Record(obs.Event{Kind: obs.KindRunStarted, Name: "rsvm"})
	r.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanRun, Span: 1})
	r.Record(obs.Event{Kind: obs.KindWorkerPanic, Name: obs.PanicSiteScore, Doc: 42})

	bundles, err := Bundles(dir)
	if err != nil || len(bundles) != 1 {
		t.Fatalf("Bundles = %v, %v; want exactly one", bundles, err)
	}
	bdir := filepath.Join(dir, bundles[0])
	if !strings.Contains(bundles[0], obs.DumpReasonWorkerPanic) {
		t.Errorf("bundle name %q does not carry the reason", bundles[0])
	}
	meta, err := ReadMeta(bdir)
	if err != nil {
		t.Fatalf("ReadMeta: %v", err)
	}
	if meta.Reason != obs.DumpReasonWorkerPanic || meta.RunID != "run-x" || meta.Fingerprint != "fp-1" {
		t.Errorf("meta: %+v", meta)
	}
	if meta.Trigger == nil || meta.Trigger.Doc != 42 || meta.Trigger.Name != obs.PanicSiteScore {
		t.Errorf("trigger: %+v", meta.Trigger)
	}

	events, err := os.ReadFile(filepath.Join(bdir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(events), "\n"); got != 3 {
		t.Errorf("events.jsonl has %d records, want 3", got)
	}
	if !strings.Contains(string(events), string(obs.KindWorkerPanic)) {
		t.Error("events.jsonl missing the trigger event")
	}

	gor, err := os.ReadFile(filepath.Join(bdir, "goroutines.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// The dump runs on the recording goroutine, so this test function is
	// on the stack of the dumping goroutine.
	if !strings.Contains(string(gor), "TestWorkerPanicDumpsBundle") {
		t.Error("goroutine dump does not include the recording goroutine's stack")
	}

	metrics, err := os.ReadFile(filepath.Join(bdir, "metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), obs.MetricPipelineWorkerPanics) {
		t.Error("metrics.txt missing registry contents")
	}

	var rt map[string]any
	data, err := os.ReadFile(filepath.Join(bdir, "runtime.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatalf("runtime.json: %v", err)
	}
	if rt["goroutines"].(float64) < 1 || rt["gomaxprocs"].(float64) < 1 {
		t.Errorf("runtime.json implausible: %v", rt)
	}

	var spans []spanInfo
	data, err = os.ReadFile(filepath.Join(bdir, "spans.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != obs.SpanRun {
		t.Errorf("spans.json: %+v", spans)
	}

	if reg.Counter(obs.MetricBlackboxDumps).Value() != 1 {
		t.Error("blackbox.dumps counter not incremented")
	}
}

func TestAutoDumpBudget(t *testing.T) {
	dir := t.TempDir()
	r := newRing(t, Options{Dir: dir, MaxBundles: 2})
	for i := 0; i < 5; i++ {
		r.Record(obs.Event{Kind: obs.KindWorkerPanic, Name: obs.PanicSiteScore, Doc: int64(i)})
	}
	bundles, _ := Bundles(dir)
	if len(bundles) != 2 {
		t.Fatalf("auto dumps = %d, want 2 (budget)", len(bundles))
	}
	// Manual dumps are exempt from the budget.
	if _, err := r.Dump(obs.DumpReasonSignal); err != nil {
		t.Fatalf("manual Dump: %v", err)
	}
	bundles, _ = Bundles(dir)
	if len(bundles) != 3 {
		t.Fatalf("after manual dump: %d bundles, want 3", len(bundles))
	}
	if !strings.Contains(bundles[2], obs.DumpReasonSignal) {
		t.Errorf("manual bundle name: %q", bundles[2])
	}
}

// TestConcurrentRecordAndDump is the -race coverage for the ring:
// writers hammer Record (including span churn) while another goroutine
// repeatedly dumps.
func TestConcurrentRecordAndDump(t *testing.T) {
	dir := t.TempDir()
	r := newRing(t, Options{Dir: dir, RingSize: 64, MaxBundles: 1})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * perWriter)
			for i := 0; i < perWriter; i++ {
				switch i % 4 {
				case 0:
					r.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanDoc, Span: base + int64(i)})
				case 1:
					r.Record(obs.Event{Kind: obs.KindSpanEnd, Name: obs.SpanDoc, Span: base + int64(i-1)})
				case 2:
					r.Record(obs.Event{Kind: obs.KindDetectorDecision, Name: "modc", Val: float64(i)})
				default:
					r.Record(obs.Event{Kind: obs.KindDocExtracted, Doc: base + int64(i)})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := r.Dump(obs.DumpReasonManual); err != nil {
				t.Errorf("Dump: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	s := r.snapshot()
	if s.total != writers*perWriter {
		t.Errorf("total = %d, want %d", s.total, writers*perWriter)
	}
	if len(s.events) != 64 {
		t.Errorf("ring len = %d, want 64", len(s.events))
	}
	bundles, _ := Bundles(dir)
	if len(bundles) != 10 {
		t.Errorf("bundles = %d, want 10", len(bundles))
	}
}

func TestHandler(t *testing.T) {
	dir := t.TempDir()
	r := newRing(t, Options{Dir: dir, RunID: "h-run"})
	r.Record(obs.Event{Kind: obs.KindRunStarted, Name: "rsvm"})

	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /: %d %s", rr.Code, rr.Body)
	}
	var st State
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RunID != "h-run" || st.Events != 1 || st.RingCap != 4096 {
		t.Errorf("state: %+v", st)
	}

	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/dump", nil))
	if rr.Code != 200 {
		t.Fatalf("POST /dump: %d %s", rr.Code, rr.Body)
	}
	bundles, _ := Bundles(dir)
	if len(bundles) != 1 {
		t.Fatalf("POST /dump produced %d bundles, want 1", len(bundles))
	}

	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/dump", nil))
	if rr.Code != 404 {
		t.Errorf("GET /dump: %d, want 404", rr.Code)
	}
}
