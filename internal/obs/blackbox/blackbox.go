// Package blackbox is the postmortem flight recorder: an always-on,
// fixed-size ring of recent obs events, the last-K detector decisions,
// and the active-span stack, held in memory at a cost low enough to
// leave enabled on every run. When the process hits something worth an
// autopsy — a recovered worker panic, a panic absorbed by the
// resilience layer, an SLO watchdog alert, or an operator SIGQUIT —
// the recorder flushes a postmortem bundle (ring contents, full
// goroutine dump, metrics and runtime snapshots, and the run's
// config/corpus fingerprint) to a crash directory.
//
// The recorder is a Tee sink, like the trace file: it observes the
// stamped event stream and never mutates it, so enabling the black box
// cannot perturb the byte-identical trace contract. Because the whole
// recorder chain is synchronous, automatic dumps run on the goroutine
// that hit the trigger — the goroutine dump in a worker-panic bundle
// shows the panicking worker still inside the pipeline's recovery
// site.
package blackbox

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"adaptiverank/internal/durable"
	"adaptiverank/internal/obs"
)

// Options configures New.
type Options struct {
	// Dir is the crash directory bundles are written to; created if
	// absent. Required.
	Dir string
	// RunID and Fingerprint identify the run in bundle metadata; the
	// fingerprint is the same config/corpus digest the resume journal
	// binds to.
	RunID       string
	Fingerprint string
	// RingSize bounds the event ring (drop-oldest). Default 4096.
	RingSize int
	// Decisions bounds the detector-decision tail kept alongside the
	// ring. Default 64.
	Decisions int
	// MaxBundles caps automatically triggered bundles per process, so a
	// fault storm cannot fill the disk; explicit Dump calls are exempt.
	// Default 8.
	MaxBundles int
	// Registry receives the blackbox.* counters and is snapshotted into
	// each bundle (nil is fine).
	Registry *obs.Registry
	// FS is the filesystem bundles are written through; nil selects the
	// real one. Tests inject fault schedules (durable/faultfs) here.
	FS durable.FS
}

type spanInfo struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"`
	Name   string `json:"name"`
	T      int64  `json:"t"`
}

// Ring is the flight recorder. It implements obs.Recorder; wire it as
// a Tee sink next to the trace file and stream server.
type Ring struct {
	opts Options

	cEvents  *obs.Counter
	cDropped *obs.Counter
	cDumps   *obs.Counter
	cErrs    *obs.Counter

	mu        sync.Mutex
	buf       []obs.Event // circular, len == cap once full
	next      int         // write position
	total     int64       // events ever recorded
	seq       int64       // self-stamping fallback (single-sink chains)
	decisions []obs.Event
	spans     map[int64]spanInfo
	autoDumps int

	// dumpMu serializes bundle writes and is never held together with mu.
	dumpMu    sync.Mutex
	bundleSeq int
}

// New creates the crash directory and returns an armed recorder.
func New(opts Options) (*Ring, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("blackbox: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	if opts.Decisions <= 0 {
		opts.Decisions = 64
	}
	if opts.MaxBundles <= 0 {
		opts.MaxBundles = 8
	}
	return &Ring{
		opts:     opts,
		cEvents:  opts.Registry.Counter(obs.MetricBlackboxEvents),
		cDropped: opts.Registry.Counter(obs.MetricBlackboxEventsDropped),
		cDumps:   opts.Registry.Counter(obs.MetricBlackboxDumps),
		cErrs:    opts.Registry.Counter(obs.MetricBlackboxDumpErrors),
		buf:      make([]obs.Event, 0, opts.RingSize),
		spans:    map[int64]spanInfo{},
	}, nil
}

// Enabled reports true: the black box is always listening.
func (r *Ring) Enabled() bool { return true }

// Record appends the event to the ring (dropping the oldest when full),
// tracks open spans and the detector-decision tail, and — when the
// event is a dump trigger — flushes a postmortem bundle before
// returning. Behind a Tee the event arrives stamped; fed directly, the
// ring stamps Seq/T itself, mirroring JSONLRecorder.
func (r *Ring) Record(e obs.Event) {
	r.mu.Lock()
	if e.Seq == 0 {
		r.seq++
		e.Seq = r.seq
	}
	if e.T == 0 {
		e.T = time.Now().UnixNano()
	}
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.cDropped.Inc()
	}
	r.next = (r.next + 1) % cap(r.buf)
	switch e.Kind {
	case obs.KindSpanStart:
		r.spans[e.Span] = spanInfo{ID: e.Span, Parent: e.Parent, Name: e.Name, T: e.T}
	case obs.KindSpanEnd:
		delete(r.spans, e.Span)
	case obs.KindDetectorDecision:
		r.decisions = append(r.decisions, e)
		if len(r.decisions) > r.opts.Decisions {
			r.decisions = r.decisions[1:]
		}
	}
	reason := triggerReason(e)
	budget := reason != "" && r.autoDumps < r.opts.MaxBundles
	if budget {
		r.autoDumps++
	}
	r.mu.Unlock()
	r.cEvents.Inc()

	if budget {
		if _, err := r.dump(reason, &e); err != nil {
			r.cErrs.Inc()
		}
	}
}

// triggerReason maps an event to the bundle reason it triggers, or "".
func triggerReason(e obs.Event) string {
	switch {
	case e.Kind == obs.KindWorkerPanic:
		return obs.DumpReasonWorkerPanic
	case e.Kind == obs.KindExtractFault && e.Name == obs.FaultPanic:
		return obs.DumpReasonExtractPanic
	case e.Kind == obs.KindAlert:
		return obs.DumpReasonAlert
	}
	return ""
}

// Dump flushes a bundle on demand (operator signal, shutdown hook).
// It is exempt from the automatic-dump budget.
func (r *Ring) Dump(reason string) (string, error) {
	if reason == "" {
		reason = obs.DumpReasonManual
	}
	dir, err := r.dump(reason, nil)
	if err != nil {
		r.cErrs.Inc()
	}
	return dir, err
}

// state is a consistent copy of the ring taken under the mutex, so the
// bundle writer never does I/O while holding it.
type state struct {
	events    []obs.Event
	decisions []obs.Event
	spans     []spanInfo
	total     int64
	dropped   int64
}

func (r *Ring) snapshot() state {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s state
	s.total = r.total
	if n := len(r.buf); n == cap(r.buf) && n > 0 {
		// Full ring: oldest is at the write position.
		s.events = make([]obs.Event, 0, n)
		s.events = append(s.events, r.buf[r.next:]...)
		s.events = append(s.events, r.buf[:r.next]...)
		s.dropped = r.total - int64(n)
	} else {
		s.events = append(s.events, r.buf...)
	}
	s.decisions = append(s.decisions, r.decisions...)
	for _, si := range r.spans {
		s.spans = append(s.spans, si)
	}
	sort.Slice(s.spans, func(i, j int) bool { return s.spans[i].ID < s.spans[j].ID })
	return s
}
