package blackbox

// Bundle layout: one directory per postmortem, named
// bundle-NNNN-<reason>, containing
//
//	events.jsonl    the event ring, oldest first (stamped Seq/T)
//	decisions.jsonl the last-K detector decisions
//	spans.json      the active-span stack at dump time
//	goroutines.txt  full goroutine dump (runtime.Stack, all=true)
//	metrics.txt     registry snapshot (obs Registry.Dump text format)
//	runtime.json    memory/GC/scheduler stats and process identity
//	meta.json       reason, trigger event, run id, fingerprint
//
// meta.json is written last and fsynced, then the bundle directory
// itself is fsynced: a bundle with meta.json present is complete, and
// readers treat its absence as a partial bundle from a dying process.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"adaptiverank/internal/durable"
	"adaptiverank/internal/obs"
)

// MetaName is the bundle-completeness marker file.
const MetaName = "meta.json"

// Meta is the decoded form of a bundle's meta.json.
type Meta struct {
	RunID       string     `json:"run_id,omitempty"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	Reason      string     `json:"reason"`
	Trigger     *obs.Event `json:"trigger,omitempty"`
	T           int64      `json:"t"`
	Events      int64      `json:"events"`
	Dropped     int64      `json:"dropped"`
	Go          string     `json:"go"`
	PID         int        `json:"pid"`
}

// runtimeStats is the runtime.json schema: the numbers an autopsy
// reaches for first, without requiring a heap profile parser.
type runtimeStats struct {
	Goroutines   int    `json:"goroutines"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	HeapAlloc    uint64 `json:"heap_alloc_bytes"`
	HeapSys      uint64 `json:"heap_sys_bytes"`
	HeapObjects  uint64 `json:"heap_objects"`
	StackInuse   uint64 `json:"stack_inuse_bytes"`
	TotalAlloc   uint64 `json:"total_alloc_bytes"`
	Mallocs      uint64 `json:"mallocs"`
	Frees        uint64 `json:"frees"`
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNs uint64 `json:"gc_pause_total_ns"`
	NextGC       uint64 `json:"next_gc_bytes"`
}

// dump writes one bundle and returns its directory.
func (r *Ring) dump(reason string, trigger *obs.Event) (string, error) {
	s := r.snapshot()

	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	var dir string
	for {
		r.bundleSeq++
		dir = filepath.Join(r.opts.Dir, fmt.Sprintf("bundle-%04d-%s", r.bundleSeq, reason))
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			break
		}
		if r.bundleSeq > 9999 {
			return "", fmt.Errorf("blackbox: bundle namespace exhausted in %s", r.opts.Dir)
		}
	}
	b, err := durable.CreateDir(r.opts.FS, dir, "blackbox")
	if err != nil {
		return "", err
	}

	if err := writeJSONL(b, "events.jsonl", s.events); err != nil {
		return dir, err
	}
	if err := writeJSONL(b, "decisions.jsonl", s.decisions); err != nil {
		return dir, err
	}
	if err := writeJSONFile(b, "spans.json", s.spans); err != nil {
		return dir, err
	}

	// Full goroutine dump; the buffer doubles until everything fits.
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	if err := b.WriteFile("goroutines.txt", buf); err != nil {
		return dir, err
	}

	if r.opts.Registry != nil {
		f, err := b.Create("metrics.txt")
		if err != nil {
			return dir, err
		}
		err = r.opts.Registry.Dump(f)
		if scErr := durable.SyncClose(f); err == nil {
			err = scErr
		}
		if err != nil {
			return dir, err
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if err := writeJSONFile(b, "runtime.json", runtimeStats{
		Goroutines:   runtime.NumGoroutine(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		HeapAlloc:    ms.HeapAlloc,
		HeapSys:      ms.HeapSys,
		HeapObjects:  ms.HeapObjects,
		StackInuse:   ms.StackInuse,
		TotalAlloc:   ms.TotalAlloc,
		Mallocs:      ms.Mallocs,
		Frees:        ms.Frees,
		NumGC:        ms.NumGC,
		PauseTotalNs: ms.PauseTotalNs,
		NextGC:       ms.NextGC,
	}); err != nil {
		return dir, err
	}

	// Completeness marker, last: durable.Dir.Commit writes meta.json
	// after every data file is synced, then fsyncs the bundle directory.
	meta, err := json.MarshalIndent(Meta{
		RunID:       r.opts.RunID,
		Fingerprint: r.opts.Fingerprint,
		Reason:      reason,
		Trigger:     trigger,
		T:           time.Now().UnixNano(),
		Events:      s.total,
		Dropped:     s.dropped,
		Go:          runtime.Version(),
		PID:         os.Getpid(),
	}, "", "  ")
	if err != nil {
		return dir, err
	}
	if err := b.Commit(MetaName, append(meta, '\n')); err != nil {
		return dir, err
	}
	r.cDumps.Inc()
	return dir, nil
}

// ReadMeta loads a bundle's meta.json.
func ReadMeta(bundleDir string) (*Meta, error) {
	data, err := os.ReadFile(filepath.Join(bundleDir, MetaName))
	if err != nil {
		return nil, err
	}
	m := &Meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("blackbox: %s: %w", filepath.Join(bundleDir, MetaName), err)
	}
	return m, nil
}

// Bundles lists the complete bundles (those with meta.json) under dir,
// sorted by name, i.e. creation order.
func Bundles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), MetaName)); err == nil {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

func writeJSONL[T any](b *durable.Dir, name string, items []T) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			return err
		}
	}
	return b.WriteFile(name, buf.Bytes())
}

func writeJSONFile(b *durable.Dir, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return b.WriteFile(name, append(data, '\n'))
}
