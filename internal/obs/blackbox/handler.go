package blackbox

// HTTP exposure, mounted by the obs server at /debug/blackbox: GET
// returns the recorder's live state (ring occupancy, active spans,
// recent detector decisions, completed bundles) and POST /dump flushes
// a manual bundle — the remote equivalent of sending SIGQUIT.

import (
	"encoding/json"
	"net/http"
	"path"

	"adaptiverank/internal/obs"
)

// State is the JSON document GET /debug/blackbox returns.
type State struct {
	RunID     string      `json:"run_id,omitempty"`
	RingLen   int         `json:"ring_len"`
	RingCap   int         `json:"ring_cap"`
	Events    int64       `json:"events"`
	Dropped   int64       `json:"dropped"`
	Spans     []spanInfo  `json:"active_spans,omitempty"`
	Decisions []obs.Event `json:"decisions,omitempty"`
	Bundles   []string    `json:"bundles,omitempty"`
}

// State returns a consistent snapshot of the recorder's live state.
func (r *Ring) State() State {
	s := r.snapshot()
	bundles, _ := Bundles(r.opts.Dir)
	return State{
		RunID:     r.opts.RunID,
		RingLen:   len(s.events),
		RingCap:   r.opts.RingSize,
		Events:    s.total,
		Dropped:   s.dropped,
		Spans:     s.spans,
		Decisions: s.decisions,
		Bundles:   bundles,
	}
}

// Handler serves the recorder state and the manual-dump trigger.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch p := path.Clean("/" + req.URL.Path); {
		case p == "/" && req.Method == http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.State())
		case p == "/dump" && req.Method == http.MethodPost:
			dir, err := r.Dump(obs.DumpReasonManual)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Bundle string `json:"bundle"`
			}{dir})
		default:
			http.NotFound(w, req)
		}
	})
}
