package prof

// Periodic runtime/metrics sampling: every numeric metric the runtime
// exports (scheduler latencies, GC cycles, heap goal, cgo calls, ...)
// is written as one JSONL line per sample, stamped with the wall clock
// and the profile phase active at sample time. Consumers diff adjacent
// lines to get per-interval deltas; cmd/profreport summarizes a few
// headline series.

import (
	"runtime/metrics"
	"time"
)

type metricDesc struct{ name string }

// metricDescs enumerates the runtime metrics worth sampling: the plain
// numeric kinds. Histogram-valued metrics are skipped — the heap and
// scheduling distributions are captured by the pprof snapshots instead.
func metricDescs() []metricDesc {
	var out []metricDesc
	for _, d := range metrics.All() {
		if d.Kind == metrics.KindUint64 || d.Kind == metrics.KindFloat64 {
			out = append(out, metricDesc{name: d.Name})
		}
	}
	return out
}

// MetricsSample is one decoded line of metrics.jsonl.
type MetricsSample struct {
	T     int64              `json:"t"`
	Phase string             `json:"phase"`
	M     map[string]float64 `json:"m"`
}

// sampleMetrics reads every tracked runtime metric and appends one
// line. Callers are serialized by construction: Start samples before
// the loop goroutine exists, the loop samples on its ticker, and Close
// samples only after the loop has exited.
func (p *Profiler) sampleMetrics() {
	if p.met == nil {
		return
	}
	samples := make([]metrics.Sample, len(p.metDescs))
	for i, d := range p.metDescs {
		samples[i].Name = d.name
	}
	metrics.Read(samples)
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			m[s.Name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			m[s.Name] = s.Value.Float64()
		}
	}
	p.mu.Lock()
	phase := p.phaseLocked()
	p.mu.Unlock()
	if err := p.met.Append(MetricsSample{T: time.Now().UnixNano(), Phase: phase, M: m}); err != nil {
		p.cErrs.Inc()
	}
}
