package prof

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"adaptiverank/internal/obs"
)

func TestEncodeParseRoundTrip(t *testing.T) {
	in := &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples: []Sample{
			{Stack: []string{"leaf", "mid", "root"}, Values: []int64{150}},
			{Stack: []string{"other", "root"}, Values: []int64{50}},
			{Stack: []string{"leaf", "root"}, Values: []int64{25}},
		},
		PeriodType:    ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:        10000000,
		TimeNanos:     1700000000000000000,
		DurationNanos: 2000000000,
	}
	raw, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("Encode output not gzipped (starts %x)", raw[:2])
	}
	out, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// Deterministic encoding: same value, same bytes.
	raw2, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode again: %v", err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("Encode is not deterministic for identical input")
	}
}

func TestParseRuntimeHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse real heap profile: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Fatal("no sample types decoded")
	}
	idx := p.ValueIndex("inuse_space")
	if p.SampleTypes[idx].Type != "inuse_space" {
		t.Errorf("ValueIndex(inuse_space) = %d (%+v)", idx, p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Fatal("no samples decoded from a live heap profile")
	}
	// Stacks must resolve to real function names, not raw addresses.
	var named bool
	for _, s := range p.Samples {
		for _, fn := range s.Stack {
			if strings.Contains(fn, ".") {
				named = true
			}
		}
	}
	if !named {
		t.Error("no sample stack resolved to a qualified function name")
	}
}

func TestTopFuncs(t *testing.T) {
	p := &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples: []Sample{
			{Stack: []string{"leaf", "mid", "root"}, Values: []int64{100}},
			{Stack: []string{"mid", "root"}, Values: []int64{40}},
			{Stack: []string{"leaf", "root"}, Values: []int64{10}},
		},
	}
	got := TopFuncs(p, 0)
	want := []FuncStat{
		{Name: "leaf", Flat: 110, Cum: 110},
		{Name: "mid", Flat: 40, Cum: 140},
		{Name: "root", Flat: 0, Cum: 150},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopFuncs:\n got %+v\nwant %+v", got, want)
	}
}

func TestTopFuncsRecursion(t *testing.T) {
	// A frame appearing twice in one stack must count once cumulatively.
	p := &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples:     []Sample{{Stack: []string{"f", "f", "root"}, Values: []int64{30}}},
	}
	got := TopFuncs(p, 0)
	if got[0].Name != "f" || got[0].Cum != 30 {
		t.Errorf("recursive frame double-counted: %+v", got)
	}
}

func TestMerge(t *testing.T) {
	a := &Profile{
		SampleTypes:   []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples:       []Sample{{Stack: []string{"x"}, Values: []int64{1}}},
		TimeNanos:     200,
		DurationNanos: 10,
	}
	b := &Profile{
		SampleTypes:   []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples:       []Sample{{Stack: []string{"y"}, Values: []int64{2}}},
		TimeNanos:     100,
		DurationNanos: 5,
	}
	m, err := Merge(a, nil, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(m.Samples) != 2 || m.DurationNanos != 15 || m.TimeNanos != 100 {
		t.Errorf("Merge result: %+v", m)
	}
	if _, err := Merge(a, &Profile{SampleTypes: []ValueType{{Type: "space", Unit: "bytes"}}}); err == nil {
		t.Error("Merge accepted mismatched sample types")
	}
	empty, err := Merge(nil, nil)
	if err != nil || empty == nil {
		t.Errorf("Merge(nil, nil) = %v, %v", empty, err)
	}
}

func TestManifestRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	mw, err := newManifestWriter(nil, dir, Record{RunID: "r1", Go: "go1.x", GOMAXPROCS: 4})
	if err != nil {
		t.Fatalf("newManifestWriter: %v", err)
	}
	recs := []Record{
		{Artifact: obs.ProfArtifactCPU, File: "0001-cpu.pb.gz", Phase: obs.SpanRank, Span: 7, T0: 10, T1: 20},
		{Artifact: obs.ProfArtifactHeap, File: "0002-heap.pb.gz", Phase: obs.ProfPhaseExtract, T0: 20, T1: 20},
		{Artifact: obs.ProfArtifactCPU, File: "0003-cpu.pb.gz", Phase: obs.SpanRank, Span: 9, T0: 20, T1: 50},
	}
	for _, r := range recs {
		if err := mw.append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := mw.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Simulate a crash mid-append: a torn final line must be ignored.
	f, err := os.OpenFile(filepath.Join(dir, ManifestName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"artifact","file":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.Header.RunID != "r1" || m.Header.GOMAXPROCS != 4 {
		t.Errorf("header: %+v", m.Header)
	}
	if len(m.Artifacts) != 3 {
		t.Fatalf("got %d artifacts, want 3 (torn tail must be dropped)", len(m.Artifacts))
	}
	if cpu := m.ByArtifact(obs.ProfArtifactCPU); len(cpu) != 2 {
		t.Errorf("ByArtifact(cpu) = %d records, want 2", len(cpu))
	}
	if w := m.PhaseWindows(); w[obs.SpanRank] != 40 {
		t.Errorf("PhaseWindows[rank] = %d, want 40", w[obs.SpanRank])
	}
}

func TestProfilerLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	p, err := Start(Options{
		Dir:             dir,
		RunID:           "test-run",
		Fingerprint:     "fp-abc",
		CPUWindow:       time.Second,
		MetricsInterval: 10 * time.Millisecond,
		Registry:        reg,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	rec := p.Recorder()
	if !rec.Enabled() {
		t.Fatal("profiler recorder must be enabled")
	}
	// Simulate a run: run > sample, rank, train-update phase spans.
	rec.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanRun, Span: 1})
	rec.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanSample, Span: 2, Parent: 1})
	rec.Record(obs.Event{Kind: obs.KindSpanEnd, Name: obs.SpanSample, Span: 2, Parent: 1})
	rec.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanRank, Span: 3, Parent: 1})
	rec.Record(obs.Event{Kind: obs.KindSpanEnd, Name: obs.SpanRank, Span: 3, Parent: 1})
	// Non-phase spans must be ignored entirely.
	rec.Record(obs.Event{Kind: obs.KindSpanStart, Name: obs.SpanDoc, Span: 4, Parent: 1})
	rec.Record(obs.Event{Kind: obs.KindSpanEnd, Name: obs.SpanDoc, Span: 4, Parent: 1})
	time.Sleep(30 * time.Millisecond) // let the metrics ticker fire
	rec.Record(obs.Event{Kind: obs.KindSpanEnd, Name: obs.SpanRun, Span: 1})
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.Header.RunID != "test-run" || m.Header.Fingerprint != "fp-abc" {
		t.Errorf("header identity: %+v", m.Header)
	}
	if m.Header.Go == "" || m.Header.GOMAXPROCS == 0 {
		t.Errorf("header environment not stamped: %+v", m.Header)
	}

	// CPU windows: phase changes force rotation, so there must be windows
	// attributed to sample, rank, and the extract gap, plus idle edges.
	phases := map[string]bool{}
	for _, r := range m.ByArtifact(obs.ProfArtifactCPU) {
		phases[r.Phase] = true
		if r.T1 < r.T0 {
			t.Errorf("cpu window with negative span: %+v", r)
		}
	}
	for _, want := range []string{obs.SpanSample, obs.SpanRank, obs.ProfPhaseExtract, obs.ProfPhaseIdle} {
		if !phases[want] {
			t.Errorf("no CPU window attributed to phase %q (have %v)", want, phases)
		}
	}
	if phases[obs.SpanDoc] {
		t.Error("doc span leaked into phase attribution")
	}

	// Phase-end snapshots: heap records attributed to sample and rank
	// with their span ids.
	heapPhases := map[string]int64{}
	for _, r := range m.ByArtifact(obs.ProfArtifactHeap) {
		heapPhases[r.Phase] = r.Span
	}
	if heapPhases[obs.SpanSample] != 2 || heapPhases[obs.SpanRank] != 3 {
		t.Errorf("phase snapshots missing or mis-attributed: %v", heapPhases)
	}
	// Run boundaries capture allocs+goroutine too.
	if n := len(m.ByArtifact(obs.ProfArtifactAllocs)); n < 3 {
		t.Errorf("got %d allocs snapshots, want >=3 (start, run open, run close)", n)
	}

	// Every manifest artifact file must exist and, for pprof kinds, parse.
	for _, r := range m.Artifacts {
		full := filepath.Join(dir, r.File)
		if _, err := os.Stat(full); err != nil {
			t.Errorf("artifact %s missing: %v", r.File, err)
			continue
		}
		if strings.HasSuffix(r.File, ".pb.gz") {
			if _, err := ParseFile(full); err != nil {
				t.Errorf("artifact %s does not parse: %v", r.File, err)
			}
		}
	}

	// Metrics: at least the start, one tick, and the close sample.
	data, err := os.ReadFile(filepath.Join(dir, "metrics.jsonl"))
	if err != nil {
		t.Fatalf("metrics.jsonl: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("got %d metrics samples, want >=3", len(lines))
	}
	var ms MetricsSample
	if err := json.Unmarshal(lines[0], &ms); err != nil {
		t.Fatalf("metrics line: %v", err)
	}
	if len(ms.M) == 0 || ms.T == 0 {
		t.Errorf("empty metrics sample: %+v", ms)
	}
	if len(m.ByArtifact(obs.ProfArtifactMetrics)) != 1 {
		t.Error("metrics.jsonl not recorded in manifest")
	}

	// Counters moved.
	if reg.Counter(obs.MetricProfCPUWindows).Value() == 0 {
		t.Error("prof.cpu_windows counter never incremented")
	}
	if reg.Counter(obs.MetricProfSnapshots).Value() == 0 {
		t.Error("prof.snapshots counter never incremented")
	}
}

func TestDirHandler(t *testing.T) {
	dir := t.TempDir()
	mw, err := newManifestWriter(nil, dir, Record{RunID: "h1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "0001-heap.pb.gz"), []byte("fake"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mw.append(Record{Artifact: obs.ProfArtifactHeap, File: "0001-heap.pb.gz", Phase: obs.ProfPhaseIdle}); err != nil {
		t.Fatal(err)
	}
	if err := mw.close(); err != nil {
		t.Fatal(err)
	}
	h := DirHandler(dir)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /: %d %s", rr.Code, rr.Body)
	}
	var listing struct {
		Header    Record   `json:"header"`
		Artifacts []Record `json:"artifacts"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing JSON: %v", err)
	}
	if listing.Header.RunID != "h1" || len(listing.Artifacts) != 1 {
		t.Errorf("listing: %+v", listing)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/0001-heap.pb.gz", nil))
	if rr.Code != 200 || rr.Body.String() != "fake" {
		t.Errorf("GET artifact: %d %q", rr.Code, rr.Body)
	}

	for _, path := range []string{"/../secrets", "/nope.pb.gz", "/a/b"} {
		rr = httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 404 {
			t.Errorf("GET %s: %d, want 404", path, rr.Code)
		}
	}
}
