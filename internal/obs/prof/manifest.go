package prof

// The profile-directory manifest: one JSONL file keying every captured
// artifact to run id, phase, span id, and wall-clock window, so profiles
// join against the event trace (span ids and UnixNano timestamps are the
// same vocabulary obs.Event uses). The first record is a header carrying
// the run identity and environment; every subsequent record describes
// one artifact file in the same directory.
//
// The writer appends and flushes per record and fsyncs on close — the
// same crash-safety contract as the event trace and the resume journal —
// and the reader tolerates a truncated final line, so a manifest cut off
// by a crash still yields every completed artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"adaptiverank/internal/durable"
)

// ManifestName is the manifest's file name inside a profile directory.
const ManifestName = "manifest.jsonl"

// Record kinds.
const (
	RecordHeader   = "header"
	RecordArtifact = "artifact"
)

// Record is one line of the manifest.
type Record struct {
	Kind string `json:"kind"`

	// Header fields: run identity and capture environment.
	RunID       string `json:"run_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Go          string `json:"go,omitempty"`
	GOOS        string `json:"goos,omitempty"`
	GOARCH      string `json:"goarch,omitempty"`
	GOMAXPROCS  int    `json:"gomaxprocs,omitempty"`

	// Artifact fields. Artifact is an obs.ProfArtifact* kind; File is the
	// artifact's name inside the directory; Phase is the profile-phase
	// label (a span name, obs.ProfPhaseExtract, or obs.ProfPhaseIdle);
	// Span is the id of the span the window is attributed to (0 when the
	// window is outside any phase span); T0/T1 bound the capture window
	// in UnixNano.
	Artifact string `json:"artifact,omitempty"`
	File     string `json:"file,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Span     int64  `json:"span,omitempty"`
	T0       int64  `json:"t0,omitempty"`
	T1       int64  `json:"t1,omitempty"`
}

// Manifest is the decoded form of one profile directory's manifest.
type Manifest struct {
	Header    Record
	Artifacts []Record
}

// ByArtifact returns the artifact records of one kind, in capture order.
func (m *Manifest) ByArtifact(kind string) []Record {
	var out []Record
	for _, r := range m.Artifacts {
		if r.Artifact == kind {
			out = append(out, r)
		}
	}
	return out
}

// PhaseWindows sums each phase's total captured CPU-window wall-clock
// time (T1-T0 across that phase's CPU artifacts), in nanoseconds.
func (m *Manifest) PhaseWindows() map[string]int64 {
	out := map[string]int64{}
	for _, r := range m.ByArtifact("cpu") {
		out[r.Phase] += r.T1 - r.T0
	}
	return out
}

// ReadManifest loads dir's manifest under the durable.ScanTornTail
// contract: a truncated final line (crash while appending) is ignored; a
// malformed line elsewhere is an error.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if _, err := durable.ScanTornTail(data, func(line int, raw []byte) error {
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("prof: manifest line %d: %w", line, err)
		}
		if r.Kind == RecordHeader && m.Header.Kind == "" {
			m.Header = r
			return nil
		}
		m.Artifacts = append(m.Artifacts, r)
		return nil
	}); err != nil {
		return nil, err
	}
	if m.Header.Kind == "" {
		return nil, fmt.Errorf("prof: manifest in %s has no header record", dir)
	}
	return m, nil
}

// manifestWriter appends manifest records crash-safely via durable.JSONL:
// every append is flushed to the OS, and close fsyncs before returning —
// the postmortem exit paths (SIGQUIT, watchdog dump) rely on this.
type manifestWriter struct {
	jl *durable.JSONL
}

func newManifestWriter(fsys durable.FS, dir string, header Record) (*manifestWriter, error) {
	jl, err := durable.AppendJSONL(fsys, filepath.Join(dir, ManifestName), "prof-manifest")
	if err != nil {
		return nil, err
	}
	mw := &manifestWriter{jl: jl}
	header.Kind = RecordHeader
	if err := mw.append(header); err != nil {
		jl.Close()
		return nil, err
	}
	return mw, nil
}

func (mw *manifestWriter) append(r Record) error {
	if r.Kind == "" {
		r.Kind = RecordArtifact
	}
	return mw.jl.Append(r)
}

func (mw *manifestWriter) close() error { return mw.jl.Close() }

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }
