package prof

import (
	"os"
	"path/filepath"
	"testing"

	"adaptiverank/internal/durable"
)

// FuzzReadManifest asserts the manifest reader never panics on arbitrary
// file contents — torn tails, binary garbage, corrupted JSON — and that
// its torn-tail tolerance composes with the append-side repair: whatever
// ReadManifest accepts, it must decode identically after the
// durable.RepairTail truncation a restarted appender would perform,
// because the swallowed tail contributed nothing. Seed inputs live in
// testdata/fuzz/FuzzReadManifest.
func FuzzReadManifest(f *testing.F) {
	header := `{"kind":"header","run_id":"fuzz","fp":"abc","go":"go1.22"}` + "\n"
	art := `{"kind":"artifact","artifact":"cpu","file":"cpu-0001.pb.gz","phase":"extract","span":7,"t0":1,"t1":2}` + "\n"
	f.Add([]byte(header))
	f.Add([]byte(header + art))
	f.Add([]byte(header + art + `{"kind":"artifact","file":"heap-`)) // torn tail
	f.Add([]byte(header + "not json\n" + art))                      // corrupt middle
	f.Add([]byte(art))                                              // no header
	f.Add([]byte(header + art + "\r\n"))
	f.Add([]byte(header + `{"kind":"header","run_id":"second"}` + "\n")) // duplicate header
	f.Add([]byte("not json"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, ManifestName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := ReadManifest(dir)
		if err != nil {
			return
		}
		if m.Header.Kind != RecordHeader {
			t.Fatalf("accepted manifest with header kind %q", m.Header.Kind)
		}
		// Determinism: the same bytes must decode the same way twice.
		m2, err := ReadManifest(dir)
		if err != nil || len(m2.Artifacts) != len(m.Artifacts) {
			t.Fatalf("re-read diverged: %d vs %d artifacts, err=%v",
				len(m2.Artifacts), len(m.Artifacts), err)
		}
		// Repair closure: cutting the uncommitted tail (everything past
		// the last newline) must not change what the reader sees.
		if err := os.WriteFile(path, data[:durable.RepairTail(data)], 0o644); err != nil {
			t.Fatal(err)
		}
		m3, err := ReadManifest(dir)
		if err != nil {
			t.Fatalf("repaired manifest rejected: %v", err)
		}
		if len(m3.Artifacts) != len(m.Artifacts) || m3.Header != m.Header {
			t.Fatalf("repair changed the decoded manifest: %d vs %d artifacts",
				len(m3.Artifacts), len(m.Artifacts))
		}
	})
}
