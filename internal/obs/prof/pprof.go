package prof

// A minimal, dependency-free codec for the pprof protobuf profile
// format (profile.proto), covering exactly what the profiling harness
// and cmd/profreport need: sample types, samples with resolved call
// stacks, the sampling period, and the wall-clock window. The decoder
// reads profiles written by runtime/pprof (gzipped protobuf); the
// encoder exists so tests and golden fixtures can construct
// deterministic profiles without depending on runtime profiling state.
//
// profile.proto field numbers used here:
//
//	Profile:   1 sample_type, 2 sample, 4 location, 5 function,
//	           6 string_table, 9 time_nanos, 10 duration_nanos,
//	           11 period_type, 12 period
//	Sample:    1 location_id (repeated uint64), 2 value (repeated int64)
//	Location:  1 id, 3 address, 4 line
//	Line:      1 function_id
//	Function:  1 id, 2 name (string-table index)
//	ValueType: 1 type, 2 unit (string-table indices)
//
// Everything else (mappings, labels, comments) is skipped on read and
// never written.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// ValueType names one sample value dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one call stack with its measured values. Stack holds
// function names leaf-most first (the pprof location order).
type Sample struct {
	Stack  []string `json:"stack"`
	Values []int64  `json:"values"`
}

// Profile is the decoded, stack-resolved form of one pprof profile.
type Profile struct {
	SampleTypes   []ValueType `json:"sample_types"`
	Samples       []Sample    `json:"samples"`
	PeriodType    ValueType   `json:"period_type"`
	Period        int64       `json:"period"`
	TimeNanos     int64       `json:"time_nanos"`
	DurationNanos int64       `json:"duration_nanos"`
}

// ValueIndex returns the index of the sample-value dimension with the
// given type name, or the last dimension when absent (for CPU profiles
// that is the cpu/nanoseconds dimension; for heap profiles the
// inuse_space dimension).
func (p *Profile) ValueIndex(typ string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == typ {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// Total sums one value dimension across all samples.
func (p *Profile) Total(valueIndex int) int64 {
	var total int64
	for _, s := range p.Samples {
		if valueIndex >= 0 && valueIndex < len(s.Values) {
			total += s.Values[valueIndex]
		}
	}
	return total
}

// --- decoding ---------------------------------------------------------

const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
	wireI32    = 5
)

type protoReader struct {
	b   []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.b) {
			return 0, io.ErrUnexpectedEOF
		}
		if shift >= 64 {
			return 0, fmt.Errorf("prof: varint overflow")
		}
		c := r.b[r.pos]
		r.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// field reads one field header, returning the field number and wire type.
func (r *protoReader) field() (int, int, error) {
	tag, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

func (r *protoReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.b)-r.pos) < n {
		return nil, io.ErrUnexpectedEOF
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *protoReader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireI64:
		if len(r.b)-r.pos < 8 {
			return io.ErrUnexpectedEOF
		}
		r.pos += 8
		return nil
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireI32:
		if len(r.b)-r.pos < 4 {
			return io.ErrUnexpectedEOF
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}

// uint64s reads a repeated uint64 field that may be packed (wireBytes)
// or a single unpacked varint, appending to dst.
func (r *protoReader) uint64s(wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := r.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	}
	raw, err := r.bytes()
	if err != nil {
		return dst, err
	}
	pr := protoReader{b: raw}
	for !pr.done() {
		v, err := pr.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

type rawValueType struct{ typ, unit int64 }

type rawSample struct {
	locs []uint64
	vals []int64
}

type rawLine struct{ funcID uint64 }

type rawLocation struct {
	id      uint64
	address uint64
	lines   []rawLine
}

type rawFunction struct {
	id   uint64
	name int64
}

// Parse decodes a pprof profile, transparently decompressing the gzip
// framing runtime/pprof writes.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}
	var (
		r       = protoReader{b: data}
		strtab  []string
		rawSTs  []rawValueType
		rawPT   rawValueType
		samples []rawSample
		locs    = map[uint64]rawLocation{}
		funcs   = map[uint64]rawFunction{}
		p       = &Profile{}
	)
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return nil, fmt.Errorf("prof: parse profile: %w", err)
		}
		switch field {
		case 1, 11: // sample_type, period_type
			raw, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("prof: parse value type: %w", err)
			}
			vt, err := parseValueType(raw)
			if err != nil {
				return nil, err
			}
			if field == 1 {
				rawSTs = append(rawSTs, vt)
			} else {
				rawPT = vt
			}
		case 2: // sample
			raw, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("prof: parse sample: %w", err)
			}
			s, err := parseSample(raw)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			raw, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("prof: parse location: %w", err)
			}
			loc, err := parseLocation(raw)
			if err != nil {
				return nil, err
			}
			locs[loc.id] = loc
		case 5: // function
			raw, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("prof: parse function: %w", err)
			}
			fn, err := parseFunction(raw)
			if err != nil {
				return nil, err
			}
			funcs[fn.id] = fn
		case 6: // string_table
			raw, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("prof: parse string table: %w", err)
			}
			strtab = append(strtab, string(raw))
		case 9: // time_nanos
			v, err := r.varint()
			if err != nil {
				return nil, fmt.Errorf("prof: parse time_nanos: %w", err)
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := r.varint()
			if err != nil {
				return nil, fmt.Errorf("prof: parse duration_nanos: %w", err)
			}
			p.DurationNanos = int64(v)
		case 12: // period
			v, err := r.varint()
			if err != nil {
				return nil, fmt.Errorf("prof: parse period: %w", err)
			}
			p.Period = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return nil, fmt.Errorf("prof: parse profile field %d: %w", field, err)
			}
		}
	}
	str := func(i int64) (string, error) {
		if i < 0 || int(i) >= len(strtab) {
			return "", fmt.Errorf("prof: string-table index %d out of range [0,%d)", i, len(strtab))
		}
		return strtab[i], nil
	}
	var err error
	for _, vt := range rawSTs {
		var t, u string
		if t, err = str(vt.typ); err != nil {
			return nil, err
		}
		if u, err = str(vt.unit); err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: t, Unit: u})
	}
	if rawPT.typ != 0 || rawPT.unit != 0 {
		var t, u string
		if t, err = str(rawPT.typ); err != nil {
			return nil, err
		}
		if u, err = str(rawPT.unit); err != nil {
			return nil, err
		}
		p.PeriodType = ValueType{Type: t, Unit: u}
	}
	// Resolve each sample's location ids to function-name stacks. A
	// location may expand to several lines (inlining), leaf-most first —
	// the same order the location ids themselves use.
	for _, rs := range samples {
		s := Sample{Values: rs.vals}
		for _, lid := range rs.locs {
			loc, ok := locs[lid]
			if !ok {
				return nil, fmt.Errorf("prof: sample references unknown location %d", lid)
			}
			if len(loc.lines) == 0 {
				s.Stack = append(s.Stack, fmt.Sprintf("0x%x", loc.address))
				continue
			}
			for _, ln := range loc.lines {
				fn, ok := funcs[ln.funcID]
				if !ok {
					return nil, fmt.Errorf("prof: location %d references unknown function %d", lid, ln.funcID)
				}
				name, err := str(fn.name)
				if err != nil {
					return nil, err
				}
				s.Stack = append(s.Stack, name)
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// ParseFile reads and decodes one profile file.
func ParseFile(path string) (*Profile, error) {
	data, err := readFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

func parseValueType(raw []byte) (rawValueType, error) {
	r := protoReader{b: raw}
	var vt rawValueType
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return vt, fmt.Errorf("prof: parse value type: %w", err)
		}
		switch field {
		case 1:
			v, err := r.varint()
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case 2:
			v, err := r.varint()
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(raw []byte) (rawSample, error) {
	r := protoReader{b: raw}
	var s rawSample
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return s, fmt.Errorf("prof: parse sample: %w", err)
		}
		switch field {
		case 1:
			if s.locs, err = r.uint64s(wire, s.locs); err != nil {
				return s, err
			}
		case 2:
			var vals []uint64
			if vals, err = r.uint64s(wire, nil); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.vals = append(s.vals, int64(v))
			}
		default:
			if err := r.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLocation(raw []byte) (rawLocation, error) {
	r := protoReader{b: raw}
	var loc rawLocation
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return loc, fmt.Errorf("prof: parse location: %w", err)
		}
		switch field {
		case 1:
			if loc.id, err = r.varint(); err != nil {
				return loc, err
			}
		case 3:
			if loc.address, err = r.varint(); err != nil {
				return loc, err
			}
		case 4:
			lraw, err := r.bytes()
			if err != nil {
				return loc, err
			}
			lr := protoReader{b: lraw}
			var line rawLine
			for !lr.done() {
				lf, lw, err := lr.field()
				if err != nil {
					return loc, err
				}
				if lf == 1 {
					if line.funcID, err = lr.varint(); err != nil {
						return loc, err
					}
				} else if err := lr.skip(lw); err != nil {
					return loc, err
				}
			}
			loc.lines = append(loc.lines, line)
		default:
			if err := r.skip(wire); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func parseFunction(raw []byte) (rawFunction, error) {
	r := protoReader{b: raw}
	var fn rawFunction
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return fn, fmt.Errorf("prof: parse function: %w", err)
		}
		switch field {
		case 1:
			if fn.id, err = r.varint(); err != nil {
				return fn, err
			}
		case 2:
			v, err := r.varint()
			if err != nil {
				return fn, err
			}
			fn.name = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return fn, err
			}
		}
	}
	return fn, nil
}

// --- encoding ---------------------------------------------------------

type protoWriter struct{ b []byte }

func (w *protoWriter) varint(v uint64) {
	for v >= 0x80 {
		w.b = append(w.b, byte(v)|0x80)
		v >>= 7
	}
	w.b = append(w.b, byte(v))
}

func (w *protoWriter) tag(field, wire int) { w.varint(uint64(field)<<3 | uint64(wire)) }

func (w *protoWriter) bytes(field int, raw []byte) {
	w.tag(field, wireBytes)
	w.varint(uint64(len(raw)))
	w.b = append(w.b, raw...)
}

func (w *protoWriter) uint(field int, v uint64) {
	if v == 0 {
		return
	}
	w.tag(field, wireVarint)
	w.varint(v)
}

func (w *protoWriter) packed(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var inner protoWriter
	for _, v := range vals {
		inner.varint(v)
	}
	w.bytes(field, inner.b)
}

// Encode serializes the profile as a gzipped pprof protobuf, the same
// framing runtime/pprof writes. One function and one location are
// emitted per distinct stack-frame name; samples reference them by id.
// Encoding is deterministic for a given Profile value, which is what
// lets tests commit golden fixtures built from literals.
func (p *Profile) Encode() ([]byte, error) {
	strtab := []string{""}
	strIdx := map[string]uint64{"": 0}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strtab))
		strtab = append(strtab, s)
		strIdx[s] = i
		return i
	}
	valueType := func(vt ValueType) []byte {
		var w protoWriter
		w.uint(1, intern(vt.Type))
		w.uint(2, intern(vt.Unit))
		return w.b
	}

	var w protoWriter
	for _, vt := range p.SampleTypes {
		w.bytes(1, valueType(vt))
	}
	// Assign function/location ids per distinct frame name, in first-use
	// order (ids must be non-zero per profile.proto).
	funcID := map[string]uint64{}
	var funcNames []string
	for _, s := range p.Samples {
		var sw protoWriter
		locs := make([]uint64, 0, len(s.Stack))
		for _, frame := range s.Stack {
			id, ok := funcID[frame]
			if !ok {
				id = uint64(len(funcNames) + 1)
				funcID[frame] = id
				funcNames = append(funcNames, frame)
			}
			locs = append(locs, id) // location id == function id, 1:1
		}
		sw.packed(1, locs)
		vals := make([]uint64, len(s.Values))
		for i, v := range s.Values {
			if v < 0 {
				return nil, fmt.Errorf("prof: encode: negative sample value %d", v)
			}
			vals[i] = uint64(v)
		}
		sw.packed(2, vals)
		w.bytes(2, sw.b)
	}
	for i, name := range funcNames {
		id := uint64(i + 1)
		var lw protoWriter
		lw.uint(1, id)
		var line protoWriter
		line.uint(1, id)
		lw.bytes(4, line.b)
		w.bytes(4, lw.b) // location
		var fw protoWriter
		fw.uint(1, id)
		fw.uint(2, intern(name))
		w.bytes(5, fw.b) // function
	}
	for _, s := range strtab {
		w.bytes(6, []byte(s))
	}
	w.uint(9, uint64(p.TimeNanos))
	w.uint(10, uint64(p.DurationNanos))
	if p.PeriodType != (ValueType{}) {
		w.bytes(11, valueType(p.PeriodType))
	}
	w.uint(12, uint64(p.Period))

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(w.b); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- aggregation ------------------------------------------------------

// FuncStat is one function's aggregate weight in a profile: Flat is the
// value attributed to samples where the function is the leaf frame, Cum
// the value of every sample whose stack contains it.
type FuncStat struct {
	Name string
	Flat int64
	Cum  int64
}

// TopFuncs aggregates one value dimension per function across the
// profile's samples and returns all functions sorted by flat value
// descending (ties broken by cumulative value, then name, so the order
// is deterministic).
func TopFuncs(p *Profile, valueIndex int) []FuncStat {
	flat := map[string]int64{}
	cum := map[string]int64{}
	for _, s := range p.Samples {
		if valueIndex < 0 || valueIndex >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		v := s.Values[valueIndex]
		flat[s.Stack[0]] += v
		seen := map[string]bool{}
		for _, fn := range s.Stack {
			if !seen[fn] {
				seen[fn] = true
				cum[fn] += v
			}
		}
	}
	out := make([]FuncStat, 0, len(cum))
	for name, c := range cum {
		out = append(out, FuncStat{Name: name, Flat: flat[name], Cum: c})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Flat != b.Flat {
			return a.Flat > b.Flat
		}
		if a.Cum != b.Cum {
			return a.Cum > b.Cum
		}
		return a.Name < b.Name
	})
	return out
}

// Merge concatenates the samples of several profiles into one (the
// per-phase aggregation of cmd/profreport: all CPU windows attributed
// to one phase merge into a single per-phase profile). Profiles must
// share a sample-type signature; nil inputs are skipped. DurationNanos
// accumulates; TimeNanos keeps the earliest non-zero stamp.
func Merge(profiles ...*Profile) (*Profile, error) {
	var out *Profile
	for _, p := range profiles {
		if p == nil {
			continue
		}
		if out == nil {
			cp := *p
			cp.Samples = append([]Sample(nil), p.Samples...)
			out = &cp
			continue
		}
		if len(p.SampleTypes) != len(out.SampleTypes) {
			return nil, fmt.Errorf("prof: merge: sample-type mismatch (%d vs %d dimensions)",
				len(out.SampleTypes), len(p.SampleTypes))
		}
		for i, vt := range p.SampleTypes {
			if out.SampleTypes[i] != vt {
				return nil, fmt.Errorf("prof: merge: sample-type mismatch at dimension %d (%v vs %v)",
					i, out.SampleTypes[i], vt)
			}
		}
		out.Samples = append(out.Samples, p.Samples...)
		out.DurationNanos += p.DurationNanos
		if out.TimeNanos == 0 || (p.TimeNanos != 0 && p.TimeNanos < out.TimeNanos) {
			out.TimeNanos = p.TimeNanos
		}
	}
	if out == nil {
		return &Profile{}, nil
	}
	return out, nil
}
