package prof

// HTTP exposure of a profile directory, mounted by the obs server at
// /profiles/. The root lists the manifest as JSON (so tooling can
// discover artifacts and their phase attribution without filesystem
// access); any path below it serves the named artifact file, which
// `go tool pprof http://host/profiles/<file>` consumes directly.

import (
	"encoding/json"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// DirHandler serves the profile directory dir. It is safe to mount
// while a Profiler is still writing: the manifest is re-read per
// request and only completed artifacts appear in it.
func DirHandler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.Trim(path.Clean("/"+r.URL.Path), "/")
		if name == "" || name == "." {
			m, err := ReadManifest(dir)
			if err != nil {
				if os.IsNotExist(err) {
					http.Error(w, "no manifest (profiling not enabled?)", http.StatusNotFound)
					return
				}
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Header    Record   `json:"header"`
				Artifacts []Record `json:"artifacts"`
			}{m.Header, m.Artifacts})
			return
		}
		// Only flat file names — the cleaned path must not escape dir.
		if strings.Contains(name, "/") {
			http.NotFound(w, r)
			return
		}
		full := filepath.Join(dir, name)
		if _, err := os.Stat(full); err != nil {
			http.NotFound(w, r)
			return
		}
		if strings.HasSuffix(name, ".jsonl") {
			w.Header().Set("Content-Type", "application/x-ndjson")
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		http.ServeFile(w, r, full)
	})
}
