// Package prof is the continuous-profiling harness: phase-scoped CPU
// profile windows, heap/allocs/goroutine/block/mutex snapshots at run
// and phase boundaries, and periodic runtime/metrics samples, all
// captured into one directory whose JSONL manifest keys every artifact
// to run id, phase, span id, and wall-clock window — the join keys the
// event trace uses, so profiles line up against spans.
//
// The harness learns phases by listening to the span stream: wire it as
// a Tee sink next to the trace file (Profiler.Recorder), and it sees the
// same KindSpanStart/KindSpanEnd events the trace records. A named
// phase span (sample, train-init, detector-prime, rank, train-update)
// opening or closing rotates the running CPU window so each window
// belongs to exactly one phase; the gap between phase spans inside an
// open run is attributed to obs.ProfPhaseExtract (the document loop),
// and time outside any run to obs.ProfPhaseIdle.
//
// It is a passive observer: it never mutates events, so enabling
// profiling cannot perturb the byte-identical trace contract.
package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"adaptiverank/internal/durable"
	"adaptiverank/internal/obs"
)

// Options configures Start.
type Options struct {
	// Dir is the profile directory; created if absent. Required.
	Dir string
	// RunID labels the manifest header. Defaults to a timestamp-pid id.
	RunID string
	// Fingerprint is the config/corpus fingerprint recorded in the
	// header (the same string the resume journal binds to), so a profile
	// directory is traceable to exactly one configuration.
	Fingerprint string
	// CPUWindow enables rotating CPU profile windows of this length.
	// Zero disables CPU profiling; boundaries still rotate windows early,
	// so a window never spans two phases.
	CPUWindow time.Duration
	// MetricsInterval is the runtime/metrics sampling period. Zero means
	// 5s; negative disables sampling.
	MetricsInterval time.Duration
	// BlockProfileRate/MutexProfileFraction, when positive, are installed
	// at Start and the corresponding profiles captured at run boundaries.
	BlockProfileRate     int
	MutexProfileFraction int
	// Registry receives the prof.* counters (nil is fine).
	Registry *obs.Registry
	// FS is the filesystem every profile artifact is written through;
	// nil selects the real one. Tests inject fault schedules
	// (durable/faultfs) here.
	FS durable.FS
}

// phaseSpans is the set of span names treated as profile phases.
var phaseSpans = map[string]bool{
	obs.SpanSample:        true,
	obs.SpanTrainInit:     true,
	obs.SpanDetectorPrime: true,
	obs.SpanRank:          true,
	obs.SpanTrainUpdate:   true,
}

type phaseFrame struct {
	id   int64
	name string
}

// Profiler captures profiles into one directory. Create with Start,
// feed span events via Recorder, and Close before reading the results.
type Profiler struct {
	opts Options
	man  *manifestWriter

	cWindows *obs.Counter
	cSnaps   *obs.Counter
	cErrs    *obs.Counter

	met      *durable.JSONL
	metDescs []metricDesc
	metT0    int64

	mu       sync.Mutex
	seq      int
	runDepth int
	phases   []phaseFrame
	cpuF     durable.File
	cpuFile  string
	cpuT0    int64
	cpuPhase string
	cpuSpan  int64
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// Start creates the profile directory, writes the manifest header,
// captures the run-start snapshot set, and begins the CPU window and
// metrics loops.
func Start(opts Options) (*Profiler, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("prof: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if opts.RunID == "" {
		opts.RunID = fmt.Sprintf("%s-%d", time.Now().UTC().Format("20060102-150405"), os.Getpid())
	}
	if opts.MetricsInterval == 0 {
		opts.MetricsInterval = 5 * time.Second
	}
	man, err := newManifestWriter(opts.FS, opts.Dir, Record{
		RunID:       opts.RunID,
		Fingerprint: opts.Fingerprint,
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	})
	if err != nil {
		return nil, err
	}
	p := &Profiler{
		opts:     opts,
		man:      man,
		cWindows: opts.Registry.Counter(obs.MetricProfCPUWindows),
		cSnaps:   opts.Registry.Counter(obs.MetricProfSnapshots),
		cErrs:    opts.Registry.Counter(obs.MetricProfErrors),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if opts.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(opts.BlockProfileRate)
	}
	if opts.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(opts.MutexProfileFraction)
	}
	if opts.MetricsInterval > 0 {
		met, err := durable.AppendJSONL(opts.FS, filepath.Join(opts.Dir, "metrics.jsonl"), "prof-metrics")
		if err != nil {
			man.close()
			return nil, err
		}
		p.met = met
		p.metDescs = metricDescs()
		p.metT0 = time.Now().UnixNano()
	}
	p.mu.Lock()
	p.snapshotLocked(obs.ProfPhaseIdle, 0, snapshotBoundary(opts))
	if opts.CPUWindow > 0 {
		p.startCPULocked()
	}
	p.mu.Unlock()
	if p.met != nil {
		p.sampleMetrics()
	}
	go p.loop()
	return p, nil
}

// snapshotBoundary returns the profile set captured at run boundaries:
// the full set, including block/mutex when their rates are installed.
func snapshotBoundary(opts Options) []string {
	kinds := []string{obs.ProfArtifactHeap, obs.ProfArtifactAllocs, obs.ProfArtifactGoroutine}
	if opts.BlockProfileRate > 0 {
		kinds = append(kinds, obs.ProfArtifactBlock)
	}
	if opts.MutexProfileFraction > 0 {
		kinds = append(kinds, obs.ProfArtifactMutex)
	}
	return kinds
}

// phaseSnapshot is the cheaper set captured at every phase boundary.
var phaseSnapshot = []string{obs.ProfArtifactHeap, obs.ProfArtifactGoroutine}

// Recorder returns a Tee sink that feeds span events to the profiler.
// It observes and never forwards — add it alongside the other sinks.
func (p *Profiler) Recorder() obs.Recorder { return profRecorder{p} }

type profRecorder struct{ p *Profiler }

func (r profRecorder) Enabled() bool { return true }

func (r profRecorder) Record(e obs.Event) {
	if e.Kind != obs.KindSpanStart && e.Kind != obs.KindSpanEnd {
		return
	}
	if e.Name != obs.SpanRun && !phaseSpans[e.Name] {
		return
	}
	r.p.spanEvent(e)
}

// spanEvent updates the phase state machine: CPU windows rotate at
// every phase change (so each window maps to one phase), named phase
// spans get a heap+goroutine snapshot when they close, and run spans
// get the full boundary set on open and close.
func (p *Profiler) spanEvent(e obs.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	switch {
	case e.Name == obs.SpanRun && e.Kind == obs.KindSpanStart:
		p.runDepth++
		p.snapshotLocked(obs.SpanRun, e.Span, snapshotBoundary(p.opts))
	case e.Name == obs.SpanRun && e.Kind == obs.KindSpanEnd:
		if p.runDepth > 0 {
			p.runDepth--
		}
		p.snapshotLocked(obs.SpanRun, e.Span, snapshotBoundary(p.opts))
	case e.Kind == obs.KindSpanStart:
		p.phases = append(p.phases, phaseFrame{id: e.Span, name: e.Name})
	case e.Kind == obs.KindSpanEnd:
		for i := len(p.phases) - 1; i >= 0; i-- {
			if p.phases[i].id == e.Span {
				p.phases = append(p.phases[:i], p.phases[i+1:]...)
				break
			}
		}
		p.snapshotLocked(e.Name, e.Span, phaseSnapshot)
	}
	if p.cpuF != nil && p.cpuPhase != p.phaseLocked() {
		p.stopCPULocked()
		p.startCPULocked()
	}
}

// phaseLocked names the phase the process is in right now.
func (p *Profiler) phaseLocked() string {
	if n := len(p.phases); n > 0 {
		return p.phases[n-1].name
	}
	if p.runDepth > 0 {
		return obs.ProfPhaseExtract
	}
	return obs.ProfPhaseIdle
}

func (p *Profiler) phaseSpanLocked() int64 {
	if n := len(p.phases); n > 0 {
		return p.phases[n-1].id
	}
	return 0
}

// snapshotLocked captures one profile file per kind, attributed to the
// given phase and span.
func (p *Profiler) snapshotLocked(phase string, span int64, kinds []string) {
	now := time.Now().UnixNano()
	for _, kind := range kinds {
		prof := pprof.Lookup(kind)
		if prof == nil {
			p.cErrs.Inc()
			continue
		}
		p.seq++
		name := fmt.Sprintf("%04d-%s.pb.gz", p.seq, kind)
		f, err := durable.OpenTrunc(p.opts.FS, filepath.Join(p.opts.Dir, name))
		if err != nil {
			p.cErrs.Inc()
			continue
		}
		err = prof.WriteTo(f, 0)
		if scErr := durable.SyncClose(f); err == nil {
			err = scErr
		}
		if err != nil {
			p.cErrs.Inc()
			continue
		}
		p.cSnaps.Inc()
		if err := p.man.append(Record{
			Artifact: kind, File: name, Phase: phase, Span: span, T0: now, T1: now,
		}); err != nil {
			p.cErrs.Inc()
		}
	}
}

// startCPULocked opens the next CPU window, stamping it with the
// current phase. On failure (another CPU profile active, disk error)
// it counts the error and leaves the window off; the next rotation
// retries.
func (p *Profiler) startCPULocked() {
	p.seq++
	name := fmt.Sprintf("%04d-cpu.pb.gz", p.seq)
	f, err := durable.OpenTrunc(p.opts.FS, filepath.Join(p.opts.Dir, name))
	if err != nil {
		p.cErrs.Inc()
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		p.cErrs.Inc()
		return
	}
	p.cpuF = f
	p.cpuFile = name
	p.cpuT0 = time.Now().UnixNano()
	p.cpuPhase = p.phaseLocked()
	p.cpuSpan = p.phaseSpanLocked()
}

// stopCPULocked closes the running CPU window and records it in the
// manifest under the phase that was active when it started.
func (p *Profiler) stopCPULocked() {
	if p.cpuF == nil {
		return
	}
	pprof.StopCPUProfile()
	f := p.cpuF
	p.cpuF = nil
	if err := durable.SyncClose(f); err != nil {
		p.cErrs.Inc()
		return
	}
	p.cWindows.Inc()
	if err := p.man.append(Record{
		Artifact: obs.ProfArtifactCPU, File: p.cpuFile, Phase: p.cpuPhase,
		Span: p.cpuSpan, T0: p.cpuT0, T1: time.Now().UnixNano(),
	}); err != nil {
		p.cErrs.Inc()
	}
}

// loop drives the time-based work: CPU window rotation and periodic
// runtime/metrics samples.
func (p *Profiler) loop() {
	defer close(p.done)
	var cpuC, metC <-chan time.Time
	if p.opts.CPUWindow > 0 {
		t := time.NewTicker(p.opts.CPUWindow)
		defer t.Stop()
		cpuC = t.C
	}
	if p.met != nil {
		t := time.NewTicker(p.opts.MetricsInterval)
		defer t.Stop()
		metC = t.C
	}
	for {
		select {
		case <-p.stop:
			return
		case <-cpuC:
			p.mu.Lock()
			if !p.closed {
				p.stopCPULocked()
				p.startCPULocked()
			}
			p.mu.Unlock()
		case <-metC:
			p.sampleMetrics()
		}
	}
}

// Close stops the loops, closes the final CPU window, captures the
// end-of-run snapshot set, and fsyncs the metrics file and manifest.
// It is idempotent and safe to call from postmortem exit paths.
func (p *Profiler) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return nil
	}
	p.closed = true
	close(p.stop)
	p.stopCPULocked()
	phase, span := p.phaseLocked(), p.phaseSpanLocked()
	p.snapshotLocked(phase, span, snapshotBoundary(p.opts))
	p.mu.Unlock()
	<-p.done

	var err error
	if p.met != nil {
		p.sampleMetrics()
		if merr := p.man.append(Record{
			Artifact: obs.ProfArtifactMetrics, File: "metrics.jsonl",
			T0: p.metT0, T1: time.Now().UnixNano(),
		}); err == nil {
			err = merr
		}
		if merr := p.met.Close(); err == nil {
			err = merr
		}
	}
	if merr := p.man.close(); err == nil {
		err = merr
	}
	return err
}

// Dir returns the profile directory.
func (p *Profiler) Dir() string { return p.opts.Dir }
