package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("a") != c {
		t.Error("Counter must return the same instrument per name")
	}
	if reg.CounterValue("a") != 5 {
		t.Error("CounterValue mismatch")
	}
	if reg.CounterValue("absent") != 0 {
		t.Error("absent counter must read 0")
	}

	g := reg.Gauge("g")
	if g.Value() != 0 {
		t.Error("gauge must start at 0")
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %g, want 3.5", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.2) > 1e-9 {
		t.Errorf("sum = %g, want 556.2", h.Sum())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10 (bucket bound)", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %g, want +Inf (overflow bucket)", q)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.ObserveDuration(500 * time.Millisecond)
	if math.Abs(h.Sum()-556.7) > 1e-9 {
		t.Errorf("sum after duration = %g, want 556.7", h.Sum())
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 25 || b[0] != 1e-6 {
		t.Fatalf("unexpected default buckets: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatal("bounds must be strictly increasing")
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z", nil).Observe(2)
	if reg.CounterValue("x") != 0 {
		t.Error("nil registry must read 0")
	}
	if err := reg.Dump(&bytes.Buffer{}); err != nil {
		t.Errorf("nil Dump: %v", err)
	}
}

func TestDumpFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("c.gauge").Set(0.25)
	reg.Histogram("d.hist", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := reg.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a.count 1") || !strings.HasPrefix(lines[1], "b.count 2") {
		t.Errorf("dump must be sorted by name:\n%s", buf.String())
	}
	if !strings.Contains(lines[3], "count=1") || !strings.Contains(lines[3], "sum=1.5") {
		t.Errorf("histogram line malformed: %q", lines[3])
	}
}

// TestRegistryConcurrentHammer drives one registry from many goroutines
// that race on instrument creation and on the instruments themselves;
// run with -race. Totals must come out exact.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 32
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("hammer.count").Inc()
				reg.Gauge("hammer.gauge").Set(float64(g))
				reg.Histogram("hammer.hist", nil).Observe(float64(i%10) * 1e-6)
				// Per-goroutine names force fresh create paths too.
				if i == 0 {
					reg.Counter("hammer.count." + string(rune('a'+g%26))).Inc()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := reg.CounterValue("hammer.count"); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	h := reg.Histogram("hammer.hist", nil)
	if h.Count() != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
	var wantSum float64
	for i := 0; i < iters; i++ {
		wantSum += float64(i%10) * 1e-6
	}
	wantSum *= goroutines
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestJSONLRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONLRecorder(&buf)
	if !rec.Enabled() {
		t.Fatal("JSONL recorder must be enabled")
	}
	rec.Record(Event{Kind: KindRunStarted, Name: "RSVM-IE", N: 100})
	rec.Record(Event{Kind: KindDocExtracted, Doc: 7, Useful: true, Dur: 3 * time.Millisecond})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Error("sequence numbers must be assigned in order")
	}
	if events[0].T == 0 {
		t.Error("record time must be assigned")
	}
	if events[1].Doc != 7 || !events[1].Useful || events[1].Dur != 3*time.Millisecond {
		t.Errorf("round-trip mismatch: %+v", events[1])
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"kind\":\"phase\"}\nnot json\n")); err == nil {
		t.Error("malformed trace must error")
	}
	if _, err := ReadEvents(strings.NewReader("{\"seq\":1}\n")); err == nil {
		t.Error("kind-less record must error")
	}
}

func TestNopRecorder(t *testing.T) {
	rec := Nop()
	if rec.Enabled() {
		t.Fatal("Nop must be disabled")
	}
	rec.Record(Event{Kind: KindRunStarted}) // must not panic
}

func TestPhaseTotals(t *testing.T) {
	events := []Event{
		{Kind: KindSampleLabelled, Dur: 2 * time.Millisecond},
		{Kind: KindDocExtracted, Dur: 3 * time.Millisecond},
		{Kind: KindRankFinished, Dur: 5 * time.Millisecond},
		{Kind: KindPhase, Name: "strategy-observe", Dur: 1 * time.Millisecond},
		{Kind: KindPhase, Name: "init-train", Dur: 7 * time.Millisecond},
		{Kind: KindModelUpdated, Dur: 11 * time.Millisecond},
		{Kind: KindPhase, Name: "detector-prime", Dur: 13 * time.Millisecond},
		{Kind: KindPhase, Name: "detection", Dur: 17 * time.Millisecond},
		{Kind: KindRunFinished, Dur: time.Hour}, // must be ignored
	}
	totals := PhaseTotals(events)
	want := map[string]time.Duration{
		"extraction": 5 * time.Millisecond,
		"ranking":    6 * time.Millisecond,
		"training":   18 * time.Millisecond,
		"detection":  30 * time.Millisecond,
		"total":      59 * time.Millisecond,
	}
	for k, w := range want {
		if totals[k] != w {
			t.Errorf("%s = %v, want %v", k, totals[k], w)
		}
	}
}

// BenchmarkDisabledPath measures the cost the hot path pays when
// observability is off: shared no-op instruments from a nil registry and
// the no-op recorder behind its Enabled guard. The acceptance bar is
// zero allocations and nanosecond-scale cost per instrument call.
func BenchmarkDisabledPath(b *testing.B) {
	var reg *Registry // nil registry hands out shared no-ops
	c := reg.Counter("bench.counter")
	g := reg.Gauge("bench.gauge")
	h := reg.Histogram("bench.hist", nil)
	rec := Nop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(1)
		if rec.Enabled() {
			rec.Record(Event{Kind: KindDocExtracted, Doc: int64(i)})
		}
	}
}

// BenchmarkEnabledRegistry measures the live-instrument cost for
// comparison (atomic ops, no locks, no allocations).
func BenchmarkEnabledRegistry(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench.counter")
	g := reg.Gauge("bench.gauge")
	h := reg.Histogram("bench.hist", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i%1000) * 1e-6)
	}
}
