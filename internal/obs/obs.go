// Package obs is the observability substrate of the adaptive-ranking
// pipeline: dependency-free atomic counters, gauges, and fixed-bucket
// histograms collected in a named Registry, plus a structured per-run
// event trace behind the Recorder interface (see recorder.go).
//
// Both halves are designed so the extraction hot path pays nothing when
// observation is disabled: every Registry accessor is safe on a nil
// receiver (it hands back shared no-op instruments), and the no-op
// Recorder reports Enabled() == false so call sites can skip building
// events entirely. Instrumented components cache instrument pointers at
// Instrument time, so the per-document cost of an enabled registry is a
// handful of atomic operations.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 (last-write-wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations are counted into
// the bucket whose upper bound is the first one >= the value, with one
// implicit overflow bucket past the last bound. Bounds are fixed at
// construction, so Observe is lock-free: a binary search plus three
// atomic updates.
type Histogram struct {
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]): the bound of the bucket where the cumulative count crosses
// q*Count. It returns +Inf when the crossing lands in the overflow
// bucket, and 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// LatencyBuckets returns the default latency bucket bounds in seconds:
// exponentially doubling from 1µs to ~16.8s (25 buckets). These cover
// everything from a single sparse dot product to a full re-rank of a
// large pending pool.
func LatencyBuckets() []float64 {
	b := make([]float64, 25)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Registry is a named collection of instruments. All methods are safe
// for concurrent use and safe on a nil receiver: a nil registry hands
// out shared no-op instruments, so instrumented code never needs a nil
// check of its own.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Shared sinks handed out by nil registries; they absorb writes so
// disabled instrumentation stays branch-free at the call sites.
var (
	nopCounter = &Counter{}
	nopGauge   = &Gauge{}
	nopHist    = newHistogram(nil)
)

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nopCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nopGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select LatencyBuckets). Later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nopHist
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name (0 when absent) without creating it.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// Dump and Snapshot live in snapshot.go: both the expvar-style text dump
// and the Prometheus exposition (prometheus.go) format the same typed
// Snapshot, so the two read paths cannot drift.
