package obs

// This file is the single registry of every obs name the system emits:
// metric names, span names, phase names, CPU-time account keys, fault
// classes, breaker states, document-skip reasons, worker-panic sites,
// and SLO watchdog rules. The obsevent analyzer (internal/lint) rejects
// string literals at Record/span/metric call sites that do not come
// from a constant declared here, so the emitters, the obsreport
// analytics, the Prometheus exposition, and the watchdog rules can
// never disagree on spelling.

// Metric names: counters, gauges, and histograms registered on a
// Registry. Grouped by owning subsystem.
const (
	// internal/pipeline run loop.
	MetricPipelineSampleDocs         = "pipeline.sample_docs"
	MetricPipelineDocsProcessed      = "pipeline.docs_processed"
	MetricPipelineDocsUseful         = "pipeline.docs_useful"
	MetricPipelineReranks            = "pipeline.reranks"
	MetricPipelineUpdates            = "pipeline.updates"
	MetricPipelineDetectorFired      = "pipeline.detector_fired"
	MetricPipelineDetectorSuppressed = "pipeline.detector_suppressed"
	MetricPipelineRankSeconds        = "pipeline.rank_seconds"
	MetricPipelineUpdateSeconds      = "pipeline.update_seconds"
	MetricPipelineDetectSeconds      = "pipeline.detect_seconds"
	MetricPipelinePoolSize           = "pipeline.pool_size"
	MetricPipelineModelSupport       = "pipeline.model_support"
	MetricPipelineFeaturesAdded      = "pipeline.features_added"
	MetricPipelineFeaturesRemoved    = "pipeline.features_removed"
	MetricPipelineDocsSkipped        = "pipeline.docs_skipped"
	MetricPipelineDocsRequeued       = "pipeline.docs_requeued"
	MetricPipelineWorkerPanics       = "pipeline.worker_panics"

	// pipeline.Resilient fault-tolerance layer.
	MetricResilienceFaults           = "resilience.faults"
	MetricResiliencePanicsRecovered  = "resilience.panics_recovered"
	MetricResilienceTimeouts         = "resilience.timeouts"
	MetricResilienceRetries          = "resilience.retries"
	MetricResilienceDocsPoisoned     = "resilience.docs_poisoned"
	MetricResilienceBreakerTrips     = "resilience.breaker_trips"
	MetricResilienceBreakerFastFails = "resilience.breaker_fastfails"

	// internal/ranking strategies.
	MetricRankingBAggLearnSeconds = "ranking.bagg.learn_seconds"
	MetricRankingBAggSteps        = "ranking.bagg.steps"
	MetricRankingRSVMLearnSeconds = "ranking.rsvm.learn_seconds"
	MetricRankingRSVMSteps        = "ranking.rsvm.steps"
	MetricRankingRSVMSupport      = "ranking.rsvm.support"

	// internal/update detectors.
	MetricUpdateModCAngleDegrees = "update.modc.angle_degrees"
	MetricUpdateFeatSShift       = "update.feats.shift"
	MetricUpdateTopKFootrule     = "update.topk.footrule"
	MetricUpdateWindFProgress    = "update.windf.progress"

	// internal/obs/explain model-introspection substrate.
	MetricExplainSnapshots    = "explain.snapshots"
	MetricExplainAttributions = "explain.attributions"
	MetricExplainDecisions    = "explain.decisions"
	MetricExplainErrors       = "explain.errors"

	// metrics.TimeAccount gauges.
	MetricTimeExtractionSeconds = "time.extraction_seconds"
	MetricTimeRankingSeconds    = "time.ranking_seconds"
	MetricTimeDetectionSeconds  = "time.detection_seconds"
	MetricTimeTrainingSeconds   = "time.training_seconds"
	MetricTimeTotalSeconds      = "time.total_seconds"

	// RuntimeSampler gauges (see runtime.go).
	MetricRuntimeGoroutines         = "runtime.goroutines"
	MetricRuntimeHeapAllocBytes     = "runtime.heap_alloc_bytes"
	MetricRuntimeHeapSysBytes       = "runtime.heap_sys_bytes"
	MetricRuntimeHeapObjects        = "runtime.heap_objects"
	MetricRuntimeNextGCBytes        = "runtime.next_gc_bytes"
	MetricRuntimeGCCount            = "runtime.gc_count"
	MetricRuntimeGCPauseLastSeconds = "runtime.gc_pause_last_seconds"
	MetricRuntimeGCPauseTotalSecs   = "runtime.gc_pause_total_seconds"

	// internal/experiments harness.
	MetricExperimentsLabelCacheErrors = "experiments.label_cache_errors"

	// internal/obs/blackbox flight recorder.
	MetricBlackboxEvents        = "blackbox.events"
	MetricBlackboxEventsDropped = "blackbox.events_dropped"
	MetricBlackboxDumps         = "blackbox.dumps"
	MetricBlackboxDumpErrors    = "blackbox.dump_errors"

	// internal/obs/prof continuous-profiling harness.
	MetricProfCPUWindows = "prof.cpu_windows"
	MetricProfSnapshots  = "prof.snapshots"
	MetricProfErrors     = "prof.errors"
)

// Span names: the vocabulary of Tracer.Start. The span tree of one run
// is run > rank|batch, batch > doc > detect > train-update; sample,
// train-init and detector-prime are direct children of run; the ranker
// learn spans nest under train-init/train-update.
const (
	SpanRun           = "run"
	SpanSample        = "sample"
	SpanTrainInit     = "train-init"
	SpanDetectorPrime = "detector-prime"
	SpanRank          = "rank"
	SpanBatch         = "batch"
	SpanDoc           = "doc"
	SpanDetect        = "detect"
	SpanTrainUpdate   = "train-update"
	SpanBAggLearn     = "bagg-learn"
	SpanRSVMLearn     = "rsvm-learn"
)

// Phase names: the Name of KindPhase events. PhaseTotals folds them
// into the CPU-time accounts below.
const (
	PhaseInitTrain       = "init-train"
	PhaseDetectorPrime   = "detector-prime"
	PhaseDetection       = "detection"
	PhaseStrategyObserve = "strategy-observe"
)

// Profile-phase labels: the phase attribution vocabulary of the
// internal/obs/prof manifest. Named phase spans (SpanSample,
// SpanTrainInit, SpanDetectorPrime, SpanRank, SpanTrainUpdate) label
// artifacts with their own span name; the gaps are labelled explicitly:
// ProfPhaseExtract is the document-extraction loop between phase spans
// of an open run, ProfPhaseIdle is everything outside a run (process
// start-up, between experiment-suite runs, shutdown).
const (
	ProfPhaseExtract = "extract"
	ProfPhaseIdle    = "idle"
)

// Profile artifact kinds: the Artifact field of internal/obs/prof
// manifest records, naming what each captured file contains.
const (
	ProfArtifactCPU       = "cpu"
	ProfArtifactHeap      = "heap"
	ProfArtifactAllocs    = "allocs"
	ProfArtifactGoroutine = "goroutine"
	ProfArtifactBlock     = "block"
	ProfArtifactMutex     = "mutex"
	ProfArtifactMetrics   = "metrics"
)

// Blackbox dump-trigger reasons: the Reason recorded in a postmortem
// bundle's meta.json, naming what flushed the flight recorder.
const (
	DumpReasonWorkerPanic  = "worker-panic"
	DumpReasonExtractPanic = "extract-panic"
	DumpReasonAlert        = "slo-alert"
	DumpReasonSignal       = "signal"
	DumpReasonManual       = "manual"
)

// CPU-time account keys: the map keys of PhaseTotals and
// report.RunReport.Phases, mirroring metrics.TimeAccount.
const (
	AccountExtraction = "extraction"
	AccountRanking    = "ranking"
	AccountDetection  = "detection"
	AccountTraining   = "training"
	AccountTotal      = "total"
)

// Fault classes: the Name of KindExtractFault events.
const (
	FaultError       = "error"
	FaultPanic       = "panic"
	FaultTimeout     = "timeout"
	FaultBreakerOpen = "breaker-open"
)

// Breaker states: the Name of KindBreaker events and the vocabulary of
// Resilient.BreakerState.
const (
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
	BreakerClosed   = "closed"
)

// Skip reasons: the Name of KindDocSkipped events.
const (
	ReasonPoisoned     = "poisoned"
	ReasonRequeueLimit = "requeue-limit"
	ReasonBreakerOpen  = "breaker-open"
	ReasonError        = "error"
)

// Worker-panic sites: the Name of KindWorkerPanic events.
const (
	PanicSiteScore = "score"
	// PanicSiteScoreBatch marks a panic inside a batch-scoring fast path;
	// the chunk is re-scored per-document, so the event has no Doc and the
	// offending document is attributed by a follow-up PanicSiteScore event.
	PanicSiteScoreBatch = "score-batch"
)

// Detector-evidence attribute keys: the Attrs vocabulary of
// KindDetectorDecision events. Every fire/no-fire decision carries the
// evidence behind it — what the detector measured, against what
// threshold, from what internal state — so a decision in a trace or an
// explain log is auditable without re-running the pipeline. Keys are
// shared across detectors where the meaning is the same (EvidenceThreshold
// is always "the bound Val was compared against").
const (
	// All detectors: the threshold the decision statistic was compared to
	// (Mod-C AlphaDeg, Top-K Tau, Feat-S Tau, Wind-F Window).
	EvidenceThreshold = "threshold"
	// Mod-C: support sizes of the live and shadow models at decision time,
	// and whether this observation trained the shadow (the sampled ρ coin).
	EvidenceLiveNNZ       = "live_nnz"
	EvidenceShadowNNZ     = "shadow_nnz"
	EvidenceShadowTrained = "shadow_trained"
	// Top-K: how many features entered/left the reference top-k ranking,
	// the k compared, and the most-displaced features ("name:Δrank" list).
	EvidenceEntered   = "entered"
	EvidenceLeft      = "left"
	EvidenceK         = "k"
	EvidenceDisplaced = "displaced"
	// Feat-S: trailing-window state captured before the cadence reset —
	// window length, in-distribution count, and the check cadence.
	EvidenceWindow     = "window"
	EvidenceInside     = "inside"
	EvidenceCheckEvery = "check_every"
	// Wind-F: documents seen in the current window (Window is the
	// threshold above).
	EvidenceSeen = "seen"
)

// Watchdog rule names, used as the Name of alert events.
const (
	// RuleRecallSlope fires when the useful-document fraction over the
	// trailing window of ranked documents falls below the floor: the
	// run's recall trajectory has flattened out.
	RuleRecallSlope = "recall-slope"
	// RuleFireRate fires when the fired fraction over the trailing
	// window of detector decisions exceeds the ceiling: the detector is
	// thrashing and update cost will swamp the extraction budget.
	RuleFireRate = "detector-fire-rate"
	// RuleStepLatency fires when the p99 of per-document step durations
	// over the trailing window exceeds the ceiling.
	RuleStepLatency = "step-latency-p99"
	// RuleFaultRate fires when the fraction of extraction attempts that
	// faulted (over the trailing window of attempt outcomes: one entry
	// per extract-fault, one per successfully extracted document) exceeds
	// the ceiling: the extractor backend is degrading and the retry layer
	// is absorbing the damage.
	RuleFaultRate = "extract-fault-rate"
)
