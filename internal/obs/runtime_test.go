package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Hour) // interval irrelevant: first sample is synchronous
	defer s.Close()

	want := []string{
		"runtime.goroutines",
		"runtime.heap_alloc_bytes",
		"runtime.heap_sys_bytes",
		"runtime.heap_objects",
		"runtime.next_gc_bytes",
		"runtime.gc_count",
		"runtime.gc_pause_total_seconds",
	}
	got := map[string]float64{}
	for _, g := range reg.Snapshot().Gauges {
		got[g.Name] = g.Value
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("gauge %s missing after the synchronous first sample", name)
		}
	}
	if got["runtime.goroutines"] < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", got["runtime.goroutines"])
	}
	if got["runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %g, want > 0", got["runtime.heap_alloc_bytes"])
	}
}

func TestRuntimeSamplerCloseStopsGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	s := StartRuntimeSampler(NewRegistry(), time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let it tick at least once
	s.Close()
	s.Close() // idempotent

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after Close = %d, want <= %d (sampler leaked)", got, before)
	}
}

func TestRuntimeSamplerNilSafe(t *testing.T) {
	var s *RuntimeSampler
	s.Close() // must not panic
	if got := StartRuntimeSampler(nil, time.Second); got != nil {
		t.Errorf("nil registry must return a nil sampler, got %v", got)
	}
}
