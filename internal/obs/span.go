package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// spanIDs issues process-wide unique span ids. Several Tracers can feed
// one Tee (cmd/experiments runs many pipelines into a shared trace), so
// uniqueness must hold across Tracer instances, not per instance.
var spanIDs atomic.Int64

// Tracer creates Spans and emits their start/end events through a
// Recorder. It carries the current *scope* — the innermost open span —
// so components instrumented independently (rankers, detectors) can
// parent their spans to whatever phase the pipeline is in without the
// pipeline threading span handles through every call.
//
// NewTracer returns nil when the recorder is disabled, and every method
// is safe on a nil receiver (returning nil Spans whose methods no-op),
// so the disabled tracing path allocates nothing. Scope manipulation is
// atomic, but the intended discipline is that one goroutine owns the
// scope stack; spans may be created and ended from other goroutines as
// long as they don't interleave scope changes.
type Tracer struct {
	rec   Recorder
	scope atomic.Pointer[Span]
}

// NewTracer wraps rec, or returns nil (the no-op tracer) when rec is
// nil or disabled.
func NewTracer(rec Recorder) *Tracer {
	if rec == nil || !rec.Enabled() {
		return nil
	}
	return &Tracer{rec: rec}
}

// Enabled reports whether Start creates real spans.
func (t *Tracer) Enabled() bool { return t != nil }

// Scope returns the innermost open span (nil at top level).
func (t *Tracer) Scope() *Span {
	if t == nil {
		return nil
	}
	return t.scope.Load()
}

// ScopeID returns the innermost open span's id, or 0. Components that
// record plain events (detector decisions) stamp them with ScopeID so
// the event ties into the span tree causally, not just temporally.
func (t *Tracer) ScopeID() int64 { return t.Scope().ID() }

// Start opens a span as a child of the current scope and makes it the
// new scope. The returned span must be closed with End; an unclosed
// span leaves only its start event in the trace (exporters synthesize
// an end at the last trace timestamp).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		t:     t,
		id:    spanIDs.Add(1),
		name:  name,
		start: nowUnixNano(),
	}
	prev := t.scope.Load()
	s.prev = prev
	if prev != nil {
		s.parent = prev.id
	}
	t.scope.Store(s)
	t.rec.Record(Event{Kind: KindSpanStart, Name: name, Span: s.id, Parent: s.parent})
	return s
}

// Span is one timed, attributed node of a run's causal tree. All
// methods are safe on a nil receiver (the disabled-tracing span) and
// End is idempotent.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  int64
	prev   *Span // scope to restore on End

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// ID returns the span id (0 for the nil span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span name ("" for the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr sets a string attribute, overwriting any previous value under
// the same key. It returns the span for chaining.
func (s *Span) SetAttr(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.setLocked(Attr{Key: key, Str: val})
	s.mu.Unlock()
	return s
}

// SetNum sets a numeric attribute, overwriting any previous value under
// the same key. It returns the span for chaining.
func (s *Span) SetNum(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.setLocked(Attr{Key: key, Num: v})
	s.mu.Unlock()
	return s
}

func (s *Span) setLocked(a Attr) {
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// End closes the span, emitting its end event with the measured
// duration and accumulated attributes. The first End wins; later calls
// are no-ops. If the span is the current scope it is popped, restoring
// the scope that was current at Start; an out-of-order End (a child
// ended after its parent, or ends interleaved across spans) leaves the
// scope untouched, so surrounding spans keep a consistent stack.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	s.t.scope.CompareAndSwap(s, s.prev)
	s.t.rec.Record(Event{
		Kind: KindSpanEnd, Name: s.name, Span: s.id, Parent: s.parent,
		Dur: time.Duration(nowUnixNano() - s.start), Attrs: attrs,
	})
}

// TraceInstrumentable is implemented by components that can emit spans
// (or span-linked events) through a shared Tracer. The pipeline hands
// its tracer to the strategy and detector when tracing is enabled, so
// their spans nest under the pipeline's current scope.
type TraceInstrumentable interface {
	InstrumentTracer(*Tracer)
}
