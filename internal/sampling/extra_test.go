package sampling

import (
	"testing"

	"adaptiverank/internal/index"
)

func TestCQSZeroTargets(t *testing.T) {
	coll := mkColl("lava here")
	idx := index.Build(coll)
	if s := CQS(idx, []string{"lava"}, 0, 5); len(s) != 0 {
		t.Errorf("CQS with n=0 returned %v", s)
	}
	if s := CQS(idx, nil, 5, 5); len(s) != 0 {
		t.Errorf("CQS with no queries returned %v", s)
	}
}

func TestCQSDefaultPerQuery(t *testing.T) {
	coll := mkColl("lava a", "lava b", "lava c")
	idx := index.Build(coll)
	// perQuery <= 0 must fall back to the default instead of looping.
	if s := CQS(idx, []string{"lava"}, 2, 0); len(s) != 2 {
		t.Errorf("CQS with default perQuery returned %d docs", len(s))
	}
}

func TestSRSZeroSample(t *testing.T) {
	coll := mkColl("a b")
	if s := SRS(coll, 0, 1); len(s) != 0 {
		t.Errorf("SRS(0) = %v", s)
	}
}
