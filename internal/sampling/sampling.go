// Package sampling implements the initial document sampling strategies of
// Section 4 — Simple Random Sampling (SRS) and Cyclic Query Sampling (CQS)
// — plus the QXtract-style SVM query learning that produces the query
// lists CQS cycles over.
package sampling

import (
	"math/rand"
	"sort"
	"strings"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/index"
	"adaptiverank/internal/learn"
	"adaptiverank/internal/tokenize"
	"adaptiverank/internal/vector"
)

// SRS picks n documents uniformly at random without replacement.
func SRS(coll *corpus.Collection, n int, seed int64) []*corpus.Document {
	rng := rand.New(rand.NewSource(seed))
	if n > coll.Len() {
		n = coll.Len()
	}
	perm := rng.Perm(coll.Len())[:n]
	sort.Ints(perm) // deterministic document order within the sample
	out := make([]*corpus.Document, n)
	for i, p := range perm {
		out[i] = coll.Docs()[p]
	}
	return out
}

// LearnQueries implements QXtract's SVM-based query generation: it trains a
// linear classifier to separate useful from useless documents of a labelled
// side collection (the TREC-like split) on word features, and returns the
// numQueries highest-positive-weight terms as single-term keyword queries.
func LearnQueries(coll *corpus.Collection, useful func(*corpus.Document) bool, numQueries int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := tokenize.NewVocab()
	feats := func(d *corpus.Document) vector.Sparse {
		counts := make(map[int32]float64)
		for _, tok := range d.Tokenize() {
			if len(tok) > 1 && !tokenize.IsStopword(tok) {
				counts[vocab.ID(tok)] = 1
			}
		}
		return vector.FromCounts(counts).Normalize()
	}

	// Build a balanced training set: all useful documents plus an equal
	// number of random useless ones (QXtract balances 5,000/5,000).
	var pos, neg []*corpus.Document
	for _, d := range coll.Docs() {
		if useful(d) {
			pos = append(pos, d)
		} else {
			neg = append(neg, d)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	if len(neg) > len(pos)*3 {
		neg = neg[:len(pos)*3]
	}
	type ex struct {
		x vector.Sparse
		y float64
	}
	var data []ex
	for _, d := range pos {
		data = append(data, ex{feats(d), 1})
	}
	for _, d := range neg {
		data = append(data, ex{feats(d), -1})
	}
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })

	model := learn.NewOnlineSVM(learn.ElasticNet{LambdaAll: 0.01, LambdaL2: 1}, true)
	for epoch := 0; epoch < 5; epoch++ {
		for _, e := range data {
			model.Step(e.x, e.y)
		}
	}

	top := model.Weights().TopK(numQueries * 2)
	queries := make([]string, 0, numQueries)
	for _, f := range top {
		if f.Weight <= 0 {
			continue // only usefulness-indicating terms become queries
		}
		queries = append(queries, vocab.Name(f.Index))
		if len(queries) == numQueries {
			break
		}
	}
	return queries
}

// CQS implements Cyclic Query Sampling: it iterates over the query list,
// and on each visit collects the yet-unseen documents among the next
// perQuery results of that query, until n documents are collected (or the
// result lists are exhausted).
func CQS(idx *index.Index, queries []string, n, perQuery int) []*corpus.Document {
	if perQuery <= 0 {
		perQuery = 20
	}
	results := make([][]index.Hit, len(queries))
	cursor := make([]int, len(queries))
	for i, q := range queries {
		results[i] = idx.SearchAll(q)
	}
	seen := make(map[corpus.DocID]bool, n)
	var out []*corpus.Document
	for len(out) < n {
		progress := false
		for i := range queries {
			if len(out) >= n {
				break
			}
			end := cursor[i] + perQuery
			if end > len(results[i]) {
				end = len(results[i])
			}
			for _, h := range results[i][cursor[i]:end] {
				if seen[h.Doc] {
					continue
				}
				seen[h.Doc] = true
				out = append(out, idx.Collection().Doc(h.Doc))
				if len(out) >= n {
					break
				}
			}
			if end > cursor[i] {
				progress = true
				cursor[i] = end
			}
		}
		if !progress {
			break // every result list exhausted
		}
	}
	return out
}

// QueryList is a learned query with the id of the generation method that
// produced it, as FactCrawl tracks per-method quality averages.
type QueryList struct {
	Method  string
	Queries []string
}

// JoinQueries flattens query lists into one cyclic order.
func JoinQueries(lists []QueryList) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l.Queries...)
	}
	return out
}

// NormalizeQuery canonicalizes a query string for deduplication.
func NormalizeQuery(q string) string { return strings.ToLower(strings.TrimSpace(q)) }
