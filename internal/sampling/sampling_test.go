package sampling

import (
	"strings"
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/index"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
)

func mkColl(texts ...string) *corpus.Collection {
	docs := make([]*corpus.Document, len(texts))
	for i, t := range texts {
		docs[i] = &corpus.Document{Text: t}
	}
	return corpus.NewCollection(docs)
}

func TestSRSSizeAndUniqueness(t *testing.T) {
	coll, _ := textgen.Generate(textgen.DefaultConfig(1, 300))
	s := SRS(coll, 50, 7)
	if len(s) != 50 {
		t.Fatalf("len = %d, want 50", len(s))
	}
	seen := map[corpus.DocID]bool{}
	for _, d := range s {
		if seen[d.ID] {
			t.Fatalf("duplicate document %d in sample", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestSRSDeterministicPerSeed(t *testing.T) {
	coll, _ := textgen.Generate(textgen.DefaultConfig(1, 200))
	a := SRS(coll, 20, 3)
	b := SRS(coll, 20, 3)
	c := SRS(coll, 20, 4)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("same seed must give the same sample")
		}
	}
	diff := false
	for i := range a {
		if a[i].ID != c[i].ID {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds gave identical samples")
	}
}

func TestSRSClampsToCollection(t *testing.T) {
	coll := mkColl("a b", "c d")
	if got := len(SRS(coll, 10, 1)); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
}

func TestLearnQueriesFindsDiscriminativeTerms(t *testing.T) {
	var texts []string
	for i := 0; i < 60; i++ {
		texts = append(texts, "hypocenter richter aftershock struck report")
	}
	for i := 0; i < 140; i++ {
		texts = append(texts, "recipe garlic simmer oven broth pastry")
	}
	coll := mkColl(texts...)
	useful := func(d *corpus.Document) bool { return d.ID < 60 }
	queries := LearnQueries(coll, useful, 3, 1)
	if len(queries) == 0 {
		t.Fatal("no queries learned")
	}
	positive := map[string]bool{"hypocenter": true, "richter": true, "aftershock": true, "struck": true, "report": true}
	for _, q := range queries {
		if !positive[q] {
			t.Errorf("query %q is not a useful-document term", q)
		}
	}
}

func TestLearnQueriesNoPositives(t *testing.T) {
	coll := mkColl("a b c", "d e f")
	if q := LearnQueries(coll, func(*corpus.Document) bool { return false }, 5, 1); q != nil {
		t.Errorf("queries = %v with no useful docs, want nil", q)
	}
}

func TestCQSCollectsUnseenAcrossQueries(t *testing.T) {
	coll := mkColl(
		"lava lava lava",   // 0: top for lava
		"ash ash ash",      // 1: top for ash
		"lava ash mixture", // 2: matches both
		"plain text",       // 3
	)
	idx := index.Build(coll)
	s := CQS(idx, []string{"lava", "ash"}, 3, 1)
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	// perQuery=1: first round takes top-1 of [lava] (doc 0) and top-1 of
	// [ash] (doc 1); second round continues down the lists.
	if s[0].ID != 0 || s[1].ID != 1 {
		t.Errorf("cyclic order broken: %v, %v", s[0].ID, s[1].ID)
	}
	seen := map[corpus.DocID]bool{}
	for _, d := range s {
		if seen[d.ID] {
			t.Fatal("CQS returned a duplicate")
		}
		seen[d.ID] = true
	}
}

func TestCQSExhaustsGracefully(t *testing.T) {
	coll := mkColl("lava here", "nothing else")
	idx := index.Build(coll)
	s := CQS(idx, []string{"lava"}, 10, 5)
	if len(s) != 1 {
		t.Errorf("len = %d, want 1 (result lists exhausted)", len(s))
	}
}

func TestCQSOnGeneratedCorpusFindsUsefulDocs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// CQS with relation-specific queries must over-sample useful docs
	// compared to the base rate.
	cfg := textgen.DefaultConfig(5, 3000)
	cfg.DensityOverride = map[relation.Relation]float64{relation.PH: 0.02}
	coll, gt := textgen.Generate(cfg)
	idx := index.Build(coll)
	sample := CQS(idx, []string{"charged", "indicted", "fraud", "accused"}, 200, 20)
	planted := map[corpus.DocID]bool{}
	for _, id := range gt.Planted[relation.PH] {
		planted[id] = true
	}
	hits := 0
	for _, d := range sample {
		if planted[d.ID] {
			hits++
		}
	}
	base := float64(len(planted)) / 3000
	got := float64(hits) / float64(len(sample))
	if got <= 2*base {
		t.Errorf("CQS useful rate %.3f not above 2x base rate %.3f", got, base)
	}
}

func TestJoinQueriesAndNormalize(t *testing.T) {
	lists := []QueryList{
		{Method: "a", Queries: []string{"x", "y"}},
		{Method: "b", Queries: []string{"z"}},
	}
	joined := JoinQueries(lists)
	if strings.Join(joined, ",") != "x,y,z" {
		t.Errorf("JoinQueries = %v", joined)
	}
	if NormalizeQuery("  Lava ") != "lava" {
		t.Error("NormalizeQuery must trim and lowercase")
	}
}
