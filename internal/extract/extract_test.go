package extract

import (
	"reflect"
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
)

func doc(text string) *corpus.Document {
	return &corpus.Document{Text: text}
}

func extractText(rel relation.Relation, text string) []relation.Tuple {
	return Get(rel).Extract(doc(text))
}

func TestNDEasySentence(t *testing.T) {
	got := extractText(relation.ND, "A tsunami swept the coast of Hawaii.")
	want := []relation.Tuple{{Rel: relation.ND, Arg1: "tsunami", Arg2: "hawaii"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestNDHardSentenceMissed(t *testing.T) {
	// The hard construction is outside the extractor's competence.
	if got := extractText(relation.ND, "Residents of Hawaii remembered the tsunami from years past."); len(got) != 0 {
		t.Errorf("hard construction yielded %v, want none", got)
	}
}

func TestNDDistractorRejected(t *testing.T) {
	// Trigger verb + disaster mention, but no extractable pair.
	if got := extractText(relation.ND, "The committee swept the proposal over the earthquake debate."); len(got) != 0 {
		t.Errorf("distractor yielded %v, want none", got)
	}
}

func TestNDDoesNotFireOnMDSentence(t *testing.T) {
	if got := extractText(relation.ND, "A blast demolished Valparaiso on Tuesday."); len(got) != 0 {
		t.Errorf("ND fired on an MD sentence: %v", got)
	}
}

func TestMDEasySentence(t *testing.T) {
	got := extractText(relation.MD, "A blast demolished Valparaiso on Tuesday.")
	want := []relation.Tuple{{Rel: relation.MD, Arg1: "blast", Arg2: "valparaiso"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestMDDoesNotFireOnNDSentence(t *testing.T) {
	if got := extractText(relation.MD, "A hurricane struck Miami on Monday."); len(got) != 0 {
		t.Errorf("MD fired on an ND sentence: %v", got)
	}
}

func TestDOEasyAndHard(t *testing.T) {
	got := extractText(relation.DO, "An outbreak of cholera was reported in March.")
	want := []relation.Tuple{{Rel: relation.DO, Arg1: "cholera", Arg2: "in March"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
	hard := "Doctors have studied cholera for decades, and clinics across the region reported steady improvements in testing capacity in March."
	if got := extractText(relation.DO, hard); len(got) != 0 {
		t.Errorf("distant disease/temporal pair yielded %v, want none", got)
	}
}

func TestDOMultiWordDisease(t *testing.T) {
	got := extractText(relation.DO, "Cases of yellow fever surged last Tuesday.")
	if len(got) != 1 || got[0].Arg1 != "yellow fever" {
		t.Errorf("Extract = %v, want yellow fever tuple", got)
	}
}

func TestPHConstructionsAllExtractable(t *testing.T) {
	// Every easy construction the generator can emit must be within the
	// extractor's competence (the co-design invariant).
	cases := []string{
		"Robert Wilson was charged with fraud yesterday.",
		"Robert Wilson was indicted on bribery charges.",
		"Prosecutors accused Robert Wilson of perjury.",
		"Robert Wilson was convicted of arson in court.",
		"Robert Wilson was arraigned on larceny charges Monday.",
		"Robert Wilson pleaded guilty to smuggling in court.",
		"Robert Wilson faces trial for extortion this term.",
		"A jury found Robert Wilson guilty of robbery.",
		"Robert Wilson was sentenced for forgery on Monday.",
		"Robert Wilson stood trial on conspiracy counts.",
	}
	for _, c := range cases {
		got := extractText(relation.PH, c)
		if len(got) != 1 {
			t.Errorf("%q yielded %v, want exactly one tuple", c, got)
			continue
		}
		if got[0].Arg1 != "Robert Wilson" {
			t.Errorf("%q: arg1 = %q, want Robert Wilson", c, got[0].Arg1)
		}
	}
}

func TestPHHardAndDistractors(t *testing.T) {
	for _, c := range []string{
		"Robert Wilson denied any role in the fraud scandal.",
		"Rumors about Robert Wilson and the alleged bribery circulated widely.",
		"The editorial charged that the fraud figures were misleading.",
		"Commentators said the panel accused nothing despite the murder coverage.",
	} {
		if got := extractText(relation.PH, c); len(got) != 0 {
			t.Errorf("%q yielded %v, want none", c, got)
		}
	}
}

func TestEWConstructions(t *testing.T) {
	cases := []string{
		"Mary Johnson won the senate race by a wide margin.",
		"Mary Johnson was declared the winner of the mayoral election.",
		"Voters chose Mary Johnson as the winner of the presidential election.",
		"Mary Johnson prevailed in the runoff election on Tuesday.",
		"Mary Johnson clinched the congressional race late Sunday.",
	}
	for _, c := range cases {
		got := extractText(relation.EW, c)
		if len(got) != 1 {
			t.Errorf("%q yielded %v, want one tuple", c, got)
			continue
		}
		if got[0].Arg2 != "Mary Johnson" {
			t.Errorf("%q: winner = %q, want Mary Johnson", c, got[0].Arg2)
		}
	}
}

func TestEWHardMissed(t *testing.T) {
	for _, c := range []string{
		"Mary Johnson conceded defeat in the senate race.",
		"Mary Johnson campaigned tirelessly before the mayoral election.",
	} {
		if got := extractText(relation.EW, c); len(got) != 0 {
			t.Errorf("%q yielded %v, want none", c, got)
		}
	}
}

func TestPCConstructions(t *testing.T) {
	for _, c := range []string{
		"Karen Davis, a veteran senator, spoke at the event.",
		"Karen Davis works as a surgeon in the city.",
		"Karen Davis serves as treasurer for the region.",
		"Karen Davis began a career as a novelist.",
	} {
		got := extractText(relation.PC, c)
		if len(got) != 1 {
			t.Errorf("%q yielded %v, want one tuple", c, got)
		}
	}
	if got := extractText(relation.PC, "Karen Davis once dreamed of becoming a senator."); len(got) != 0 {
		t.Errorf("hard PC construction yielded %v", got)
	}
}

func TestPOPositiveAndNegative(t *testing.T) {
	for _, c := range []string{
		"James Smith joined Meridian Corp as a senior manager.",
		"Apex Industries named James Smith its new director.",
		"James Smith works for Summit Holdings downtown.",
		"James Smith is employed by Vanguard Bank as an analyst.",
	} {
		got := extractText(relation.PO, c)
		if len(got) != 1 {
			t.Errorf("%q yielded %v, want one tuple", c, got)
		}
	}
	for _, c := range []string{
		"James Smith criticized Meridian Corp at the hearing.",
		"James Smith toured the offices of Apex Industries on Friday.",
		"James Smith sued Summit Holdings over the contract.",
	} {
		if got := extractText(relation.PO, c); len(got) != 0 {
			t.Errorf("%q yielded %v, want none", c, got)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	text := "A tsunami swept the coast of Hawaii. Robert Wilson was charged with fraud yesterday."
	a := extractText(relation.ND, text)
	b := extractText(relation.ND, text)
	if !reflect.DeepEqual(a, b) {
		t.Error("extraction must be deterministic")
	}
}

func TestExtractDeduplicatesTuples(t *testing.T) {
	text := "A tsunami swept the coast of Hawaii. A tsunami swept the coast of Hawaii."
	got := extractText(relation.ND, text)
	if len(got) != 1 {
		t.Errorf("duplicate sentences yielded %v, want one tuple", got)
	}
}

func TestUsefulHelper(t *testing.T) {
	e := Get(relation.ND)
	if !Useful(e, doc("A tsunami swept the coast of Hawaii.")) {
		t.Error("Useful must be true for an extractable document")
	}
	if Useful(e, doc("Nothing to see here.")) {
		t.Error("Useful must be false for an empty extraction")
	}
}

func TestSimulatedCostMatchesRelation(t *testing.T) {
	for _, r := range relation.All() {
		if Get(r).SimulatedCost() != r.ExtractionCost() {
			t.Errorf("%s: SimulatedCost != relation cost", r.Code())
		}
	}
}

func TestGetCachesExtractors(t *testing.T) {
	if Get(relation.PH) != Get(relation.PH) {
		t.Error("Get must return the cached extractor")
	}
}
