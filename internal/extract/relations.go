package extract

import (
	"fmt"
	"strings"
	"sync"

	"adaptiverank/internal/learn"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/tokenize"
	"adaptiverank/internal/vector"
)

// distanceClassifier links two entities when at most maxGap tokens separate
// them — the "distance between entities" relation predictor the paper uses
// for Disease–Outbreak.
type distanceClassifier struct {
	maxGap int
}

func (c distanceClassifier) classify(_ []string, arg1, arg2 Span) bool {
	gap := arg2.Start - arg1.End
	if arg1.Start > arg2.Start {
		gap = arg1.Start - arg2.End
	}
	return gap >= 0 && gap <= c.maxGap
}

// pairContext renders the lexical context of a candidate pair as a token
// sequence with semantic-role placeholders: up to two tokens before the
// first entity, the tokens between the entities, one token after the
// second, and "<arg1>"/"<arg2>" markers. Both the subsequence-kernel
// classifier and its exemplars are built from this rendering.
func pairContext(tokens []string, arg1, arg2 Span) []string {
	first, second := arg1, arg2
	firstIs1 := true
	if arg2.Start < arg1.Start {
		first, second = arg2, arg1
		firstIs1 = false
	}
	role := func(isFirst bool) string {
		if isFirst == firstIs1 {
			return "<arg1>"
		}
		return "<arg2>"
	}
	var ctx []string
	for i := first.Start - 2; i < first.Start; i++ {
		if i >= 0 {
			ctx = append(ctx, strings.ToLower(tokens[i]))
		}
	}
	ctx = append(ctx, role(true))
	for i := first.End; i < second.Start; i++ {
		ctx = append(ctx, strings.ToLower(tokens[i]))
	}
	ctx = append(ctx, role(false))
	if second.End < len(tokens) {
		ctx = append(ctx, strings.ToLower(tokens[second.End]))
	}
	return ctx
}

// ssKernelClassifier is the subsequence-kernel nearest-exemplar relation
// classifier (Bunescu & Mooney in the paper's setting), used for PC, ND,
// MD, PH, and EW.
type ssKernelClassifier struct {
	scorer *learn.ExemplarScorer
	maxGap int
	// triggers gates the kernel: the pair context must contain at least
	// one relation-specific trigger token. This lexicalized gate is what
	// keeps structurally similar sentences of *other* relations (which
	// share the news-prose skeleton) from matching.
	triggers map[string]bool
}

func (c *ssKernelClassifier) classify(tokens []string, arg1, arg2 Span) bool {
	gap := arg2.Start - arg1.End
	if arg1.Start > arg2.Start {
		gap = arg1.Start - arg2.End
	}
	if gap < 0 || gap > c.maxGap {
		return false
	}
	ctx := pairContext(tokens, arg1, arg2)
	hasTrigger := false
	for _, t := range ctx {
		if c.triggers[t] {
			hasTrigger = true
			break
		}
	}
	if !hasTrigger {
		return false
	}
	return c.scorer.Match(ctx)
}

var (
	kernelOnce sync.Once
	kernelCls  map[relation.Relation]*ssKernelClassifier
)

// kernelClassifier returns the exemplar-based kernel classifier for rel.
// Exemplars mirror the trigger constructions each extraction system was
// built for; sentences expressing the relation in other constructions fall
// below the threshold, which is what bounds extractor recall in practice.
func kernelClassifier(rel relation.Relation) *ssKernelClassifier {
	kernelOnce.Do(buildKernelClassifiers)
	c, ok := kernelCls[rel]
	if !ok {
		panic(fmt.Sprintf("extract: no kernel classifier for %v", rel))
	}
	return c
}

func buildKernelClassifiers() {
	kernelCls = make(map[relation.Relation]*ssKernelClassifier)
	k := learn.NewSubseqKernel(3, 0.75)
	ex := func(rel relation.Relation, threshold float64, maxGap int, triggers []string, exemplars ...string) {
		sc := &learn.ExemplarScorer{Kernel: k, Threshold: threshold}
		for _, e := range exemplars {
			sc.Exemplars = append(sc.Exemplars, strings.Fields(e))
		}
		tr := make(map[string]bool, len(triggers))
		for _, t := range triggers {
			tr[t] = true
		}
		kernelCls[rel] = &ssKernelClassifier{scorer: sc, maxGap: maxGap, triggers: tr}
	}

	// Disaster relations: one exemplar per trigger verb plus the longer
	// easy constructions.
	var ndEx, mdEx []string
	for _, t := range textgen.NDTriggers {
		ndEx = append(ndEx,
			"a <arg1> "+t+" <arg2> on",
			"the <arg1> "+t+" parts of <arg2> overnight",
			"a <arg1> "+t+" the coast of <arg2>",
		)
	}
	for _, t := range textgen.MDTriggers {
		mdEx = append(mdEx,
			"a <arg1> "+t+" <arg2> on",
			"the <arg1> "+t+" parts of <arg2> overnight",
			"a <arg1> "+t+" the coast of <arg2>",
		)
	}
	ex(relation.ND, 0.50, 8, textgen.NDTriggers, ndEx...)
	ex(relation.MD, 0.50, 8, textgen.MDTriggers, mdEx...)

	fromTable := func(cs []textgen.Construction) (gates, exemplars []string) {
		gates = textgen.GateWords(cs)
		for _, c := range cs {
			exemplars = append(exemplars, c.Exemplar)
		}
		return gates, exemplars
	}
	phGates, phEx := fromTable(textgen.PHConstructions)
	ex(relation.PH, 0.45, 8, phGates, phEx...)

	ewGates, ewEx := fromTable(textgen.EWConstructions)
	ex(relation.EW, 0.45, 10, ewGates, ewEx...)

	pcGates, pcEx := fromTable(textgen.PCConstructions)
	ex(relation.PC, 0.45, 6, pcGates, pcEx...)
}

// poSVM is the linear SVM relation classifier for Person–Organization
// Affiliation (Giuliano et al. in the paper's setting), trained once on
// deterministic labelled pairs.
type poSVM struct {
	vocab *tokenize.Vocab
	model *learn.OnlineSVM
}

var (
	poOnce sync.Once
	poCls  *poSVM
)

func newPOSVM() *poSVM {
	poOnce.Do(func() {
		cls := &poSVM{
			vocab: tokenize.NewVocab(),
			model: learn.NewOnlineSVM(learn.ElasticNet{LambdaAll: 1e-3, LambdaL2: 1}, true),
		}
		pairs := poTrainingData(3000, 17)
		for epoch := 0; epoch < 4; epoch++ {
			for _, p := range pairs {
				y := -1.0
				if p.positive {
					y = 1
				}
				cls.model.Step(cls.features(p.tokens, p.arg1, p.arg2), y)
			}
		}
		poCls = cls
	})
	return poCls
}

// features builds the candidate-pair feature vector: between-token bag,
// two-token windows around the entities, entity order, and a bucketed
// distance, following shallow-feature relation extraction practice.
func (c *poSVM) features(tokens []string, arg1, arg2 Span) vector.Sparse {
	first, second := arg1, arg2
	order := "per-first"
	if arg2.Start < arg1.Start {
		first, second = arg2, arg1
		order = "org-first"
	}
	counts := make(map[int32]float64)
	add := func(f string) { counts[c.vocab.ID(f)]++ }
	for i := first.End; i < second.Start; i++ {
		add("bt=" + strings.ToLower(tokens[i]))
	}
	for i := first.Start - 2; i < first.Start; i++ {
		if i >= 0 {
			add("bf=" + strings.ToLower(tokens[i]))
		}
	}
	for i := second.End; i < second.End+2 && i < len(tokens); i++ {
		add("af=" + strings.ToLower(tokens[i]))
	}
	add("order=" + order)
	gap := second.Start - first.End
	switch {
	case gap <= 1:
		add("dist=adjacent")
	case gap <= 3:
		add("dist=near")
	case gap <= 6:
		add("dist=mid")
	default:
		add("dist=far")
	}
	add("bias")
	return vector.FromCounts(counts)
}

func (c *poSVM) classify(tokens []string, arg1, arg2 Span) bool {
	gap := arg2.Start - arg1.End
	if arg1.Start > arg2.Start {
		gap = arg1.Start - arg2.End
	}
	if gap < 0 || gap > 10 {
		return false
	}
	return c.model.Margin(c.features(tokens, arg1, arg2)) > 0
}

// FeatureCount exposes the learned feature-space size for diagnostics.
func (c *poSVM) FeatureCount() int { return c.vocab.Len() }
