package extract

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
)

// ErrInjected marks every transient failure produced by a Flaky wrapper,
// so tests and the resilience layer can distinguish injected faults from
// real ones with errors.Is.
var ErrInjected = errors.New("extract: injected fault")

// FlakyOptions configures the deterministic fault schedule of a Flaky
// wrapper. All rates are probabilities in [0, 1], evaluated independently
// per (document, attempt) from the seed alone, so two processes running
// the same schedule over the same collection observe the same faults in
// the same places — the property the fault-matrix tests and the
// kill-and-resume smoke test rely on.
type FlakyOptions struct {
	// Seed drives the whole schedule; runs with equal seeds fault
	// identically.
	Seed int64
	// ErrorRate is the per-attempt probability of a transient error.
	ErrorRate float64
	// PanicRate is the per-attempt probability of a panic (evaluated
	// before ErrorRate; a faulting attempt panics or errors, never both).
	PanicRate float64
	// HangRate is the per-attempt probability of a hang: the attempt
	// blocks until its context is cancelled (or HangDur elapses, so a
	// context-free caller is not blocked forever).
	HangRate float64
	// HangDur bounds a hang when the context never fires (default 30s).
	HangDur time.Duration
	// LatencyRate is the per-attempt probability of a latency spike of
	// Latency (the attempt then succeeds normally).
	LatencyRate float64
	// Latency is the spike duration (default 50ms). Setting
	// LatencyRate to 1 turns the wrapper into a uniform per-document
	// delay, which the CLI uses to stretch runs for the kill-and-resume
	// smoke test.
	Latency time.Duration
	// PoisonRate is the per-document probability that every attempt for
	// that document fails (a poisoned document: retries never help and
	// the resilience layer must skip it).
	PoisonRate float64
	// MaxFaultyAttempts caps how many consecutive attempts on one
	// document may fault (default 2): attempt MaxFaultyAttempts+1 always
	// succeeds unless the document is poisoned, guaranteeing that
	// bounded retry converges.
	MaxFaultyAttempts int
}

func (o *FlakyOptions) defaults() {
	if o.HangDur <= 0 {
		o.HangDur = 30 * time.Second
	}
	if o.Latency <= 0 {
		o.Latency = 50 * time.Millisecond
	}
	if o.MaxFaultyAttempts <= 0 {
		o.MaxFaultyAttempts = 2
	}
}

// Enabled reports whether the schedule can produce any fault or delay.
func (o FlakyOptions) Enabled() bool {
	return o.ErrorRate > 0 || o.PanicRate > 0 || o.HangRate > 0 ||
		o.LatencyRate > 0 || o.PoisonRate > 0
}

// Flaky wraps an Extractor with a seeded, deterministic schedule of
// transient errors, latency spikes, hangs, panics, and poisoned
// documents. It is the adversary the fault-tolerance layer is tested
// against: every failure mode a remote or crash-prone extraction backend
// exhibits, reproduced exactly from a seed.
//
// Faults are keyed by (document, attempt): Flaky counts the attempts it
// has seen per document, so a retrying caller walks a fixed fault
// sequence and — for non-poisoned documents — always reaches a clean
// attempt. ResetAttempts restores the initial state, as a process
// restart would.
type Flaky struct {
	inner Extractor
	opts  FlakyOptions

	mu       sync.Mutex
	attempts map[corpus.DocID]int
}

// NewFlaky wraps inner with the given fault schedule.
func NewFlaky(inner Extractor, opts FlakyOptions) *Flaky {
	opts.defaults()
	return &Flaky{inner: inner, opts: opts, attempts: make(map[corpus.DocID]int)}
}

// Relation implements Extractor.
func (f *Flaky) Relation() relation.Relation { return f.inner.Relation() }

// SimulatedCost implements Extractor.
func (f *Flaky) SimulatedCost() time.Duration { return f.inner.SimulatedCost() }

// Extract implements Extractor for fault-unaware callers: injected
// errors surface as "no tuples" and hangs are bounded by HangDur. The
// fault-aware path is ExtractContext.
func (f *Flaky) Extract(d *corpus.Document) []relation.Tuple {
	//lint:allow ctxflow compat shim: the Extractor interface has no ctx to thread
	ts, _ := f.ExtractContext(context.Background(), d)
	return ts
}

// ExtractContext implements ContextExtractor, applying the fault
// scheduled for this (document, attempt) pair before delegating to the
// wrapped extractor.
func (f *Flaky) ExtractContext(ctx context.Context, d *corpus.Document) ([]relation.Tuple, error) {
	attempt := f.nextAttempt(d.ID)
	switch f.fault(d.ID, attempt) {
	case faultHang:
		t := time.NewTimer(f.opts.HangDur)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
			return nil, fmt.Errorf("doc %d attempt %d: hang expired: %w", d.ID, attempt, ErrInjected)
		}
	case faultPanic:
		panic(fmt.Sprintf("extract: injected panic on doc %d attempt %d", d.ID, attempt))
	case faultError:
		return nil, fmt.Errorf("doc %d attempt %d: %w", d.ID, attempt, ErrInjected)
	case faultLatency:
		t := time.NewTimer(f.opts.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ExtractContext(ctx, f.inner, d)
}

// ResetAttempts forgets the per-document attempt counters, restoring the
// state a freshly started process would see.
func (f *Flaky) ResetAttempts() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts = make(map[corpus.DocID]int)
}

func (f *Flaky) nextAttempt(id corpus.DocID) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts[id]++
	return f.attempts[id]
}

type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultPanic
	faultHang
	faultLatency
)

// fault decides the fault for one (document, attempt) pair. Hard faults
// (panic, error, hang) stop after MaxFaultyAttempts so retry converges;
// poisoned documents fail on every attempt; latency spikes are harmless
// and keep their schedule on all attempts.
func (f *Flaky) fault(id corpus.DocID, attempt int) faultKind {
	if f.Poisoned(id) {
		if f.roll(id, attempt, "poison-kind") < f.opts.PanicRate/(f.opts.PanicRate+f.opts.ErrorRate+1e-12) {
			return faultPanic
		}
		return faultError
	}
	if attempt <= f.opts.MaxFaultyAttempts {
		if f.roll(id, attempt, "panic") < f.opts.PanicRate {
			return faultPanic
		}
		if f.roll(id, attempt, "error") < f.opts.ErrorRate {
			return faultError
		}
		if f.roll(id, attempt, "hang") < f.opts.HangRate {
			return faultHang
		}
	}
	if f.roll(id, attempt, "latency") < f.opts.LatencyRate {
		return faultLatency
	}
	return faultNone
}

// Poisoned reports whether every attempt for id is scheduled to fail.
func (f *Flaky) Poisoned(id corpus.DocID) bool {
	return f.roll(id, 0, "poisoned") < f.opts.PoisonRate
}

// roll derives a uniform value in [0, 1) from (seed, doc, attempt, kind).
func (f *Flaky) roll(id corpus.DocID, attempt int, kind string) float64 {
	h := fnv.New64a()
	var buf [20]byte
	putInt64(buf[0:8], f.opts.Seed)
	putInt64(buf[8:16], int64(id))
	putInt64(buf[16:20], int64(attempt))
	h.Write(buf[:])
	h.Write([]byte(kind))
	// 53 high-entropy bits -> [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func putInt64(b []byte, v int64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}
