package extract

import (
	"reflect"
	"testing"

	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/tokenize"
)

func spansOf(r Recognizer, sentence string) []Span {
	return r.Recognize(tokenize.WordsCased(sentence))
}

func TestDictionaryRecognizerLongestMatch(t *testing.T) {
	d := newDictionaryRecognizer("Disease", []string{"fever", "yellow fever"})
	spans := spansOf(d, "an outbreak of yellow fever was reported")
	if len(spans) != 1 || spans[0].Text != "yellow fever" {
		t.Errorf("spans = %v, want single longest match 'yellow fever'", spans)
	}
}

func TestDictionaryRecognizerCaseInsensitive(t *testing.T) {
	d := newDictionaryRecognizer("Charge", []string{"fraud"})
	if got := spansOf(d, "the Fraud inquiry"); len(got) != 1 {
		t.Errorf("case-insensitive match failed: %v", got)
	}
}

func TestOrgRecognizer(t *testing.T) {
	o := newOrgRecognizer()
	spans := spansOf(o, "He joined Meridian Global Corp as manager")
	if len(spans) != 1 {
		t.Fatalf("spans = %v, want one", spans)
	}
	if spans[0].Text != "Meridian Global Corp" {
		t.Errorf("org = %q, want full capitalized run", spans[0].Text)
	}
	// A bare suffix word is not an organization.
	if got := spansOf(o, "The University is large"); len(got) != 0 {
		t.Errorf("bare suffix matched: %v", got)
	}
	// Lowercase suffix is not an organization.
	if got := spansOf(o, "he visited the corp office"); len(got) != 0 {
		t.Errorf("lowercase suffix matched: %v", got)
	}
}

func TestTemporalRecognizer(t *testing.T) {
	r := newTemporalRecognizer()
	cases := map[string]string{
		"cases were reported in March":     "in March",
		"cases were reported last Tuesday": "last Tuesday",
		"cases surged in early September":  "in early September",
	}
	for sentence, want := range cases {
		spans := spansOf(r, sentence)
		if len(spans) == 0 || spans[0].Text != want {
			t.Errorf("%q -> %v, want %q", sentence, spans, want)
		}
	}
	if got := spansOf(r, "he went in quickly last time"); len(got) != 0 {
		t.Errorf("non-temporal matched: %v", got)
	}
}

func TestElectionRecognizer(t *testing.T) {
	r := newElectionRecognizer()
	spans := spansOf(r, "She won the presidential election by a mile")
	if len(spans) != 1 || spans[0].Text != "presidential election" {
		t.Errorf("spans = %v, want 'presidential election'", spans)
	}
	// "the election" alone has no modifier.
	if got := spansOf(r, "after the election ended"); len(got) != 0 {
		t.Errorf("bare 'the election' matched: %v", got)
	}
}

func TestPersonHMMRecognizesPoolNames(t *testing.T) {
	p := personHMM()
	spans := spansOf(p, "Officials said that James Wilson attended the gathering")
	if len(spans) != 1 {
		t.Fatalf("spans = %v, want one person", spans)
	}
	if spans[0].Text != "James Wilson" {
		t.Errorf("person = %q, want James Wilson", spans[0].Text)
	}
}

func TestPersonHMMDoesNotTagLocations(t *testing.T) {
	p := personHMM()
	for _, s := range []string{
		"The panel met in Los Angeles on Monday",
		"Meridian Corp sponsored the event downtown",
	} {
		if got := spansOf(p, s); len(got) != 0 {
			t.Errorf("%q tagged persons: %v", s, got)
		}
	}
}

func TestDisasterTaggerMultiToken(t *testing.T) {
	nd := disasterTagger(relation.ND)
	spans := spansOf(nd, "A flash flood struck Topeka on Monday")
	if len(spans) != 1 || spans[0].Text != "flash flood" {
		t.Errorf("spans = %v, want multi-token 'flash flood'", spans)
	}
}

func TestDisasterTaggersShareNothing(t *testing.T) {
	if disasterTagger(relation.ND) == disasterTagger(relation.MD) {
		t.Error("ND and MD taggers must be distinct models")
	}
	if disasterTagger(relation.ND) != disasterTagger(relation.ND) {
		t.Error("tagger must be cached per relation")
	}
}

func TestPairContextRoles(t *testing.T) {
	tokens := []string{"Voters", "chose", "Mary", "Johnson", "as", "the", "winner", "of", "the", "senate", "race"}
	election := Span{Start: 9, End: 11, Text: "senate race"}
	person := Span{Start: 2, End: 4, Text: "Mary Johnson"}
	// arg1 = election, arg2 = person (tuple roles), person comes first
	// in the text.
	got := pairContext(tokens, election, person)
	want := []string{"voters", "chose", "<arg2>", "as", "the", "winner", "of", "the", "<arg1>"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pairContext = %v, want %v", got, want)
	}
}

func TestGateWordsCoverConstructionTables(t *testing.T) {
	for _, cs := range [][]textgen.Construction{
		textgen.PHConstructions, textgen.EWConstructions, textgen.PCConstructions,
	} {
		gates := textgen.GateWords(cs)
		if len(gates) != len(uniqueGates(cs)) {
			t.Errorf("gate list %v not deduplicated", gates)
		}
	}
}

func uniqueGates(cs []textgen.Construction) map[string]bool {
	m := map[string]bool{}
	for _, c := range cs {
		m[c.Gate] = true
	}
	return m
}
