package extract

import (
	"fmt"
	"math/rand"
	"strings"

	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
)

// This file generates the deterministic labelled training data the
// machine-learned extractors are built from, standing in for the annotated
// corpora real NER/relation systems are trained on. The data is drawn from
// the same entity pools and sentence constructions as the synthetic corpus,
// which models the realistic situation of extractors trained on in-domain
// annotations.

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func personName(rng *rand.Rand) []string {
	return []string{pick(rng, textgen.FirstNames), pick(rng, textgen.LastNames)}
}

// appendEntity appends entity tokens with B-/I- tags.
func appendEntity(sent, tags []string, entity []string, typ string) ([]string, []string) {
	for i, tok := range entity {
		sent = append(sent, tok)
		if i == 0 {
			tags = append(tags, "B-"+typ)
		} else {
			tags = append(tags, "I-"+typ)
		}
	}
	return sent, tags
}

// oTokens appends plain O-tagged tokens (split on spaces).
func oTokens(sent, tags []string, text string) ([]string, []string) {
	for _, tok := range strings.Fields(text) {
		sent = append(sent, tok)
		tags = append(tags, "O")
	}
	return sent, tags
}

// personTrainingData builds labelled sentences for the HMM person
// recognizer: person mentions in varied contexts, and O coverage for the
// other capitalized vocabulary of the corpus (locations, organizations,
// months, weekdays) so the tagger does not confuse them with names.
func personTrainingData(n int, seed int64) (sents [][]string, tags [][]string) {
	rng := rand.New(rand.NewSource(seed))
	oVocab := make([]string, 0, 512)
	oVocab = append(oVocab, textgen.Locations...)
	oVocab = append(oVocab, textgen.OrgCores...)
	oVocab = append(oVocab, textgen.OrgSuffixes...)
	// Capitalized filler nouns start many corpus sentences; the tagger
	// must know them as O so it does not mistake them for names.
	for _, n := range textgen.FillerNouns {
		oVocab = append(oVocab, strings.ToUpper(n[:1])+n[1:])
	}
	oVocab = append(oVocab, "Commentators", "Prosecutors", "Doctors",
		"Friends", "Health", "Voters", "Investigators")
	oVocab = append(oVocab, "January", "February", "March", "April", "May",
		"June", "July", "August", "September", "October", "November",
		"December", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
		"Saturday", "Sunday")
	lowFill := []string{"the", "event", "downtown", "yesterday", "officials",
		"reported", "gathering", "attended", "spoke", "meeting", "said",
		"visited", "plans", "about", "with", "committee", "panel"}
	for i := 0; i < n; i++ {
		var s, t []string
		switch rng.Intn(5) {
		case 0: // no person; O-vocabulary coverage
			s, t = oTokens(s, t, "The")
			for k := 0; k < 3+rng.Intn(4); k++ {
				if rng.Intn(2) == 0 {
					// Multi-word gazetteer entries ("Los Angeles") must be
					// split into tokens, as the tagger will see them.
					s, t = oTokens(s, t, pick(rng, oVocab))
				} else {
					s, t = oTokens(s, t, pick(rng, lowFill))
				}
			}
		case 1: // person at sentence start
			s, t = appendEntity(s, t, personName(rng), "PER")
			s, t = oTokens(s, t, pick(rng, []string{
				"attended the gathering downtown",
				"spoke at the meeting yesterday",
				"visited the committee last",
				"was charged with fraud",
				"works as a senator",
			}))
		case 2: // person mid-sentence
			s, t = oTokens(s, t, pick(rng, []string{
				"Officials said that", "Reporters asked whether",
				"The panel thanked", "Prosecutors accused",
			}))
			s, t = appendEntity(s, t, personName(rng), "PER")
			s, t = oTokens(s, t, pick(rng, []string{
				"of the charges", "about the plans", "at the event", "on Monday",
			}))
		case 3: // two persons
			s, t = appendEntity(s, t, personName(rng), "PER")
			s, t = oTokens(s, t, "attended the gathering with")
			s, t = appendEntity(s, t, personName(rng), "PER")
		default: // person with org context (for the PO pipeline)
			s, t = appendEntity(s, t, personName(rng), "PER")
			s, t = oTokens(s, t, "joined")
			s, t = oTokens(s, t, pick(rng, textgen.OrgCores))
			s, t = oTokens(s, t, pick(rng, textgen.OrgSuffixes))
			s, t = oTokens(s, t, "as a senior manager")
		}
		sents = append(sents, s)
		tags = append(tags, t)
	}
	return sents, tags
}

// disasterSubTopics returns the generator sub-topics for rel.
func disasterSubTopics(rel relation.Relation) []textgen.SubTopic {
	if rel == relation.MD {
		return textgen.MDSubTopics
	}
	return textgen.NDSubTopics
}

// disasterTrainingData builds labelled sentences for the perceptron
// disaster-mention tagger (ND or MD): mentions in trigger contexts, and
// O coverage of sub-topic vocabulary and locations.
func disasterTrainingData(rel relation.Relation, n int, seed int64) (sents [][]string, tags [][]string) {
	rng := rand.New(rand.NewSource(seed))
	sts := disasterSubTopics(rel)
	triggers := textgen.NDTriggers
	if rel == relation.MD {
		triggers = textgen.MDTriggers
	}
	for i := 0; i < n; i++ {
		st := sts[rng.Intn(len(sts))]
		var s, t []string
		switch rng.Intn(7) {
		case 0: // "A <mention> <trigger> <Location> ..."
			s, t = oTokens(s, t, "A")
			s, t = appendEntity(s, t, strings.Fields(pick(rng, st.Mentions)), "DIS")
			s, t = oTokens(s, t, pick(rng, triggers))
			s, t = oTokens(s, t, pick(rng, textgen.Locations))
			s, t = oTokens(s, t, "on Monday")
		case 4: // "A powerful <mention> <trigger> <Location> early yesterday"
			s, t = oTokens(s, t, "A powerful")
			s, t = appendEntity(s, t, strings.Fields(pick(rng, st.Mentions)), "DIS")
			s, t = oTokens(s, t, pick(rng, triggers))
			s, t = oTokens(s, t, pick(rng, textgen.Locations))
			s, t = oTokens(s, t, "early yesterday")
		case 5: // "A <mention> <trigger> the coast of <Location>"
			s, t = oTokens(s, t, "A")
			s, t = appendEntity(s, t, strings.Fields(pick(rng, st.Mentions)), "DIS")
			s, t = oTokens(s, t, pick(rng, triggers))
			s, t = oTokens(s, t, "the coast of")
			s, t = oTokens(s, t, pick(rng, textgen.Locations))
		case 6: // "The <mention> <trigger> parts of <Location> overnight"
			s, t = oTokens(s, t, "The")
			s, t = appendEntity(s, t, strings.Fields(pick(rng, st.Mentions)), "DIS")
			s, t = oTokens(s, t, pick(rng, triggers))
			s, t = oTokens(s, t, "parts of")
			s, t = oTokens(s, t, pick(rng, textgen.Locations))
			s, t = oTokens(s, t, "overnight")
		case 1: // "The <mention> left ..." with sub-topic vocabulary as O
			s, t = oTokens(s, t, "The")
			s, t = appendEntity(s, t, strings.Fields(pick(rng, st.Mentions)), "DIS")
			s, t = oTokens(s, t, "left")
			s, t = oTokens(s, t, pick(rng, st.Words))
			s, t = oTokens(s, t, "and")
			s, t = oTokens(s, t, pick(rng, st.Words))
			s, t = oTokens(s, t, "behind")
		case 2: // hard-construction coverage
			s, t = oTokens(s, t, "Residents of")
			s, t = oTokens(s, t, pick(rng, textgen.Locations))
			s, t = oTokens(s, t, "remembered the")
			s, t = appendEntity(s, t, strings.Fields(pick(rng, st.Mentions)), "DIS")
			s, t = oTokens(s, t, "from years past")
		default: // pure O sentence with sub-topic words
			s, t = oTokens(s, t, "Reports of")
			s, t = oTokens(s, t, pick(rng, st.Words))
			s, t = oTokens(s, t, "and")
			s, t = oTokens(s, t, pick(rng, st.Words))
			s, t = oTokens(s, t, "reached officials by Friday")
		}
		sents = append(sents, s)
		tags = append(tags, t)
	}
	return sents, tags
}

// poTrainingPair is one labelled (person, organization) candidate pair for
// the PO relation SVM: the full sentence tokens, span positions, and label.
type poTrainingPair struct {
	tokens     []string
	arg1, arg2 Span
	positive   bool
}

// poTrainingData builds labelled pairs for the PO relation classifier:
// positives from affiliation constructions, negatives from non-affiliation
// co-occurrence constructions.
func poTrainingData(n int, seed int64) []poTrainingPair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]poTrainingPair, 0, n)
	for i := 0; i < n; i++ {
		per := personName(rng)
		org := []string{pick(rng, textgen.OrgCores), pick(rng, textgen.OrgSuffixes)}
		var tokens []string
		var pSpan, oSpan Span
		positive := rng.Intn(2) == 0
		build := func(parts ...any) {
			for _, p := range parts {
				switch v := p.(type) {
				case string:
					tokens = append(tokens, strings.Fields(v)...)
				case []string:
					tokens = append(tokens, v...)
				}
			}
		}
		mark := func(ent []string) Span {
			// Find ent's position in tokens (entities are unique here).
			for k := 0; k+len(ent) <= len(tokens); k++ {
				match := true
				for j := range ent {
					if tokens[k+j] != ent[j] {
						match = false
						break
					}
				}
				if match {
					return Span{Start: k, End: k + len(ent), Text: strings.Join(ent, " ")}
				}
			}
			panic("extract: training entity not found in constructed sentence")
		}
		table := textgen.PONegative
		if positive {
			table = textgen.POPositive
		}
		c := table[rng.Intn(len(table))]
		sentence := fmt.Sprintf(c.Format, strings.Join(per, " "), strings.Join(org, " "))
		build(strings.TrimSuffix(sentence, "."))
		pSpan = mark(per)
		oSpan = mark(org)
		pSpan.Type, oSpan.Type = "Person", "Organization"
		out = append(out, poTrainingPair{tokens: tokens, arg1: pSpan, arg2: oSpan, positive: positive})
	}
	// Deterministic shuffle for SGD epochs.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
