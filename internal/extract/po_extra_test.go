package extract

import (
	"testing"

	"adaptiverank/internal/relation"
)

func TestPOAllPositiveConstructionsExtractable(t *testing.T) {
	cases := []string{
		"Laura Adams was appointed by Keystone Institute last spring.",
		"Laura Adams is a spokesman for Falcon Airlines.",
		"Laura Adams was promoted at Sterling Group twice.",
		"Laura Adams leads the research team at Orion Laboratories.",
		"Laura Adams heads the planning office at Crown Foundation.",
	}
	for _, c := range cases {
		got := extractText(relation.PO, c)
		if len(got) != 1 {
			t.Errorf("%q yielded %v, want one tuple", c, got)
			continue
		}
		if got[0].Arg1 != "Laura Adams" {
			t.Errorf("%q: person = %q", c, got[0].Arg1)
		}
	}
}

func TestPONegativeConstructionsRejected(t *testing.T) {
	for _, c := range []string{
		"Granite Holdings denied claims made by Laura Adams last week.",
		"Laura Adams photographed the Apex Industries building downtown.",
	} {
		if got := extractText(relation.PO, c); len(got) != 0 {
			t.Errorf("%q yielded %v, want none", c, got)
		}
	}
}

func TestPOFeatureCountGrows(t *testing.T) {
	cls := newPOSVM()
	if cls.FeatureCount() == 0 {
		t.Error("trained PO classifier must have features")
	}
}

func TestSpansOverlapHelper(t *testing.T) {
	a := Span{Start: 0, End: 2}
	b := Span{Start: 1, End: 3}
	c := Span{Start: 2, End: 4}
	if !spansOverlap(a, b) {
		t.Error("overlapping spans not detected")
	}
	if spansOverlap(a, c) {
		t.Error("adjacent spans must not overlap")
	}
}
