// Package extract implements the information extraction systems of the
// paper's experimental setting (Section 4): entity recognizers of several
// model families (dictionary, pattern, supervised HMM, structured
// perceptron) combined with relation extractors (distance-based, linear
// SVM, subsequence-kernel nearest-exemplar). Each relation in Table 1 gets
// the system mix the paper describes. The ranking layer treats every
// extractor as an already-trained black box, exactly as in the paper.
package extract

import (
	"context"
	"sort"
	"sync"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/tokenize"
)

// Span is an entity mention: token interval [Start, End) in a sentence.
type Span struct {
	Type  string
	Start int
	End   int
	Text  string
}

// Recognizer finds entity mentions of one type in a tokenized sentence.
type Recognizer interface {
	// Recognize returns the spans found in the (case-preserving) tokens.
	Recognize(tokens []string) []Span
	// Type names the entity type this recognizer produces.
	Type() string
}

// Extractor is the black-box information extraction system interface the
// ranking pipeline consumes: documents in, tuples out, plus the simulated
// per-document CPU cost of the underlying system.
type Extractor interface {
	Relation() relation.Relation
	Extract(d *corpus.Document) []relation.Tuple
	SimulatedCost() time.Duration
}

// ContextExtractor is the fault-aware extension of Extractor: extraction
// that can be cancelled or time out, and that can fail. The resilience
// layer (internal/pipeline) prefers this interface when the wrapped
// system implements it; plain Extractors are treated as infallible and
// non-blocking. See Flaky for the fault-injecting reference
// implementation.
type ContextExtractor interface {
	Extractor
	// ExtractContext extracts tuples from d, honouring ctx cancellation
	// and deadlines. A nil error means the returned tuples are the
	// system's final answer for d; an error means the attempt failed and
	// yielded nothing.
	ExtractContext(ctx context.Context, d *corpus.Document) ([]relation.Tuple, error)
}

// ExtractContext runs e on d through the fault-aware path when e
// implements ContextExtractor, and falls back to the infallible Extract
// otherwise (checking ctx once up front, so cancelled pipelines do not
// start new work on legacy extractors).
func ExtractContext(ctx context.Context, e Extractor, d *corpus.Document) ([]relation.Tuple, error) {
	if ce, ok := e.(ContextExtractor); ok {
		return ce.ExtractContext(ctx, d)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Extract(d), nil
}

// Useful reports whether the extractor produces at least one tuple for d —
// the paper's definition of a useful document.
func Useful(e Extractor, d *corpus.Document) bool {
	return len(e.Extract(d)) > 0
}

// pairClassifier decides whether a candidate (arg1, arg2) span pair in a
// sentence expresses the relation.
type pairClassifier interface {
	classify(tokens []string, arg1, arg2 Span) bool
}

// sentenceExtractor is the shared implementation: recognize arg1 and arg2
// entities per sentence, classify every cross pair, dedupe tuples.
type sentenceExtractor struct {
	rel        relation.Relation
	arg1, arg2 Recognizer
	classifier pairClassifier
}

func (e *sentenceExtractor) Relation() relation.Relation { return e.rel }

func (e *sentenceExtractor) SimulatedCost() time.Duration { return e.rel.ExtractionCost() }

func (e *sentenceExtractor) Extract(d *corpus.Document) []relation.Tuple {
	seen := make(map[relation.Tuple]bool)
	var out []relation.Tuple
	for _, sent := range tokenize.Sentences(d.Text) {
		tokens := tokenize.WordsCased(sent)
		if len(tokens) == 0 {
			continue
		}
		a1 := e.arg1.Recognize(tokens)
		if len(a1) == 0 {
			continue
		}
		a2 := e.arg2.Recognize(tokens)
		if len(a2) == 0 {
			continue
		}
		for _, s1 := range a1 {
			for _, s2 := range a2 {
				if spansOverlap(s1, s2) {
					continue
				}
				if !e.classifier.classify(tokens, s1, s2) {
					continue
				}
				t := relation.Tuple{Rel: e.rel, Arg1: s1.Text, Arg2: s2.Text}
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arg1 != out[j].Arg1 {
			return out[i].Arg1 < out[j].Arg1
		}
		return out[i].Arg2 < out[j].Arg2
	})
	return out
}

func spansOverlap(a, b Span) bool {
	return a.Start < b.End && b.Start < a.End
}

var (
	registry   sync.Map // relation.Relation -> *sync.Once + Extractor
	registryMu sync.Mutex
	extractors = map[relation.Relation]Extractor{}
)

// Get returns the trained extraction system for rel, constructing (and
// training) it on first use. Construction is deterministic, so repeated
// processes build identical extractors.
func Get(rel relation.Relation) Extractor {
	registryMu.Lock()
	defer registryMu.Unlock()
	if e, ok := extractors[rel]; ok {
		return e
	}
	e := build(rel)
	extractors[rel] = e
	return e
}

// build assembles the per-relation system mix of Section 4.
func build(rel relation.Relation) Extractor {
	switch rel {
	case relation.PO:
		// HMM person NER + pattern organization NER + SVM relation
		// classifier.
		return &sentenceExtractor{
			rel:        rel,
			arg1:       personHMM(),
			arg2:       newOrgRecognizer(),
			classifier: newPOSVM(),
		}
	case relation.DO:
		// Dictionary disease NER + pattern temporal NER +
		// distance-based relation predictor.
		return &sentenceExtractor{
			rel:        rel,
			arg1:       newDictionaryRecognizer("Disease", diseasePhrases()),
			arg2:       newTemporalRecognizer(),
			classifier: distanceClassifier{maxGap: 8},
		}
	case relation.PC:
		return &sentenceExtractor{
			rel:        rel,
			arg1:       personHMM(),
			arg2:       newDictionaryRecognizer("Career", careerPhrases()),
			classifier: kernelClassifier(rel),
		}
	case relation.ND:
		// Perceptron (MEMM stand-in) disaster NER + location gazetteer +
		// subsequence-kernel relation classifier.
		return &sentenceExtractor{
			rel:        rel,
			arg1:       disasterTagger(relation.ND),
			arg2:       newDictionaryRecognizer("Location", locationPhrases()),
			classifier: kernelClassifier(rel),
		}
	case relation.MD:
		return &sentenceExtractor{
			rel:        rel,
			arg1:       disasterTagger(relation.MD),
			arg2:       newDictionaryRecognizer("Location", locationPhrases()),
			classifier: kernelClassifier(rel),
		}
	case relation.PH:
		return &sentenceExtractor{
			rel:        rel,
			arg1:       personHMM(),
			arg2:       newDictionaryRecognizer("Charge", chargePhrases()),
			classifier: kernelClassifier(rel),
		}
	case relation.EW:
		return &sentenceExtractor{
			rel:        rel,
			arg1:       newElectionRecognizer(),
			arg2:       personHMM(),
			classifier: kernelClassifier(rel),
		}
	}
	panic("extract: unknown relation")
}
