package extract

import (
	"context"
	"errors"
	"testing"
	"time"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
)

// stubExtractor returns one fixed tuple for every document.
type stubExtractor struct{}

func (stubExtractor) Relation() relation.Relation  { return relation.PO }
func (stubExtractor) SimulatedCost() time.Duration { return time.Millisecond }
func (stubExtractor) Extract(d *corpus.Document) []relation.Tuple {
	return []relation.Tuple{{Rel: relation.PO, Arg1: "a", Arg2: d.Title}}
}

func flakyDocs(n int) []*corpus.Document {
	docs := make([]*corpus.Document, n)
	for i := range docs {
		docs[i] = &corpus.Document{ID: corpus.DocID(i), Title: "t", Text: "x"}
	}
	return docs
}

// attemptOutcome classifies one ExtractContext call for the determinism
// comparison: ok, error, or panic.
func attemptOutcome(f *Flaky, d *corpus.Document) (kind string) {
	defer func() {
		if recover() != nil {
			kind = "panic"
		}
	}()
	_, err := f.ExtractContext(context.Background(), d)
	if err != nil {
		return "error"
	}
	return "ok"
}

func TestFlakyDeterministicSchedule(t *testing.T) {
	docs := flakyDocs(200)
	opts := FlakyOptions{Seed: 11, ErrorRate: 0.2, PanicRate: 0.05, PoisonRate: 0.02}
	run := func() []string {
		f := NewFlaky(stubExtractor{}, opts)
		var out []string
		for _, d := range docs {
			for a := 0; a < 3; a++ { // three attempts per doc
				out = append(out, attemptOutcome(f, d))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between identically seeded runs: %s vs %s", i, a[i], b[i])
		}
	}
	// The schedule must actually produce some of each outcome.
	counts := map[string]int{}
	for _, k := range a {
		counts[k]++
	}
	if counts["ok"] == 0 || counts["error"] == 0 || counts["panic"] == 0 {
		t.Fatalf("schedule produced outcomes %v, want all three kinds", counts)
	}

	// A different seed must produce a different schedule.
	opts2 := opts
	opts2.Seed = 12
	f2 := NewFlaky(stubExtractor{}, opts2)
	diff := 0
	i := 0
	for _, d := range docs {
		for a := 0; a < 3; a++ {
			if attemptOutcome(f2, d) != b[i] {
				diff++
			}
			i++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 11 and 12 produced identical schedules")
	}
}

func TestFlakyRetryConverges(t *testing.T) {
	// Non-poisoned documents must succeed within MaxFaultyAttempts+1
	// attempts; poisoned documents must never succeed.
	f := NewFlaky(stubExtractor{}, FlakyOptions{
		Seed: 3, ErrorRate: 0.5, PanicRate: 0.1, PoisonRate: 0.05, MaxFaultyAttempts: 2,
	})
	poisoned, clean := 0, 0
	for _, d := range flakyDocs(300) {
		ok := false
		for a := 0; a < 3; a++ {
			if attemptOutcome(f, d) == "ok" {
				ok = true
				break
			}
		}
		if f.Poisoned(d.ID) {
			poisoned++
			if ok {
				t.Fatalf("poisoned doc %d succeeded", d.ID)
			}
		} else {
			clean++
			if !ok {
				t.Fatalf("non-poisoned doc %d failed all %d attempts", d.ID, 3)
			}
		}
	}
	if poisoned == 0 || clean == 0 {
		t.Fatalf("degenerate schedule: %d poisoned, %d clean", poisoned, clean)
	}
}

func TestFlakyInjectedErrorsAreMarked(t *testing.T) {
	f := NewFlaky(stubExtractor{}, FlakyOptions{Seed: 5, ErrorRate: 1})
	_, err := f.ExtractContext(context.Background(), flakyDocs(1)[0])
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestFlakyHangHonoursContext(t *testing.T) {
	f := NewFlaky(stubExtractor{}, FlakyOptions{Seed: 1, HangRate: 1, HangDur: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.ExtractContext(ctx, flakyDocs(1)[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived its context")
	}
}

func TestFlakyLatencyDelaysThenSucceeds(t *testing.T) {
	f := NewFlaky(stubExtractor{}, FlakyOptions{Seed: 1, LatencyRate: 1, Latency: 30 * time.Millisecond})
	start := time.Now()
	ts, err := f.ExtractContext(context.Background(), flakyDocs(1)[0])
	if err != nil || len(ts) != 1 {
		t.Fatalf("latency attempt: tuples=%v err=%v", ts, err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency spike not applied: took %v", d)
	}
}

func TestFlakyResetAttemptsRestoresSchedule(t *testing.T) {
	opts := FlakyOptions{Seed: 9, ErrorRate: 0.6}
	f := NewFlaky(stubExtractor{}, opts)
	d := flakyDocs(1)[0]
	first := []string{attemptOutcome(f, d), attemptOutcome(f, d), attemptOutcome(f, d)}
	f.ResetAttempts()
	second := []string{attemptOutcome(f, d), attemptOutcome(f, d), attemptOutcome(f, d)}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("attempt %d differs after reset: %s vs %s", i, first[i], second[i])
		}
	}
}
