package extract

import (
	"testing"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
)

// TestCorpusLevelExtractionQuality runs every extraction system over a
// generated corpus and checks the end-to-end calibration invariants:
// high recall on extractor-friendly planted documents, and no tuples from
// unplanted documents (distractors and noise must not fire).
func TestCorpusLevelExtractionQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-level extraction is slow")
	}
	coll, gt := textgen.Generate(textgen.DefaultConfig(123, 3000))
	for _, r := range relation.All() {
		e := Get(r)
		planted := make(map[corpus.DocID]bool, len(gt.Planted[r]))
		for _, id := range gt.Planted[r] {
			planted[id] = true
		}
		var easyHit, easyTotal, falsePos int
		for _, d := range coll.Docs() {
			useful := Useful(e, d)
			if useful && !planted[d.ID] {
				falsePos++
				if falsePos <= 3 {
					t.Logf("%s false positive doc %d: %v", r.Code(), d.ID, e.Extract(d))
				}
			}
			if gt.EasyPlanted[r][d.ID] {
				easyTotal++
				if useful {
					easyHit++
				}
			}
		}
		if falsePos > 0 {
			t.Errorf("%s: %d unplanted documents produced tuples", r.Code(), falsePos)
		}
		if easyTotal == 0 {
			continue // too sparse at this corpus size
		}
		if recall := float64(easyHit) / float64(easyTotal); recall < 0.9 {
			t.Errorf("%s: easy-planted recall = %.2f (%d/%d), want >= 0.9",
				r.Code(), recall, easyHit, easyTotal)
		}
	}
}

// TestExtractedTuplesMatchPlanted verifies that when the extractor fires
// on a planted document, the extracted tuples are (a subset of) the
// planted ones up to case normalization.
func TestExtractedTuplesMatchPlanted(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-level extraction is slow")
	}
	coll, gt := textgen.Generate(textgen.DefaultConfig(77, 1500))
	for _, r := range []relation.Relation{relation.ND, relation.PH, relation.EW} {
		e := Get(r)
		checked := 0
		for _, id := range gt.Planted[r] {
			wantArgs := map[string]bool{}
			for _, tu := range gt.Tuples[id] {
				if tu.Rel == r {
					wantArgs[normalize(tu.Arg1)] = true
				}
			}
			for _, tu := range e.Extract(coll.Doc(id)) {
				checked++
				if !wantArgs[normalize(tu.Arg1)] {
					t.Errorf("%s doc %d: extracted arg1 %q not planted (planted: %v)",
						r.Code(), id, tu.Arg1, wantArgs)
				}
			}
		}
		if checked == 0 {
			t.Logf("%s: no planted docs at this corpus size (sparse)", r.Code())
		}
	}
}

func normalize(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}
