package extract

import (
	"strings"
	"sync"
	"unicode"

	"adaptiverank/internal/tokenize"

	"adaptiverank/internal/learn"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/textgen"
)

// dictionaryRecognizer matches a phrase gazetteer (case-insensitive,
// longest match first) against sentence tokens. It is the "dictionaries"
// entity recognizer of Section 4.
type dictionaryRecognizer struct {
	typ     string
	phrases map[string]bool // lowercase space-joined phrases
	maxLen  int
}

func newDictionaryRecognizer(typ string, phrases []string) *dictionaryRecognizer {
	d := &dictionaryRecognizer{typ: typ, phrases: make(map[string]bool, len(phrases)), maxLen: 1}
	for _, p := range phrases {
		toks := strings.Fields(strings.ToLower(p))
		if len(toks) == 0 {
			continue
		}
		if len(toks) > d.maxLen {
			d.maxLen = len(toks)
		}
		d.phrases[strings.Join(toks, " ")] = true
	}
	return d
}

func (d *dictionaryRecognizer) Type() string { return d.typ }

func (d *dictionaryRecognizer) Recognize(tokens []string) []Span {
	lower := make([]string, len(tokens))
	for i, t := range tokens {
		lower[i] = strings.ToLower(t)
	}
	var spans []Span
	for i := 0; i < len(tokens); {
		matched := 0
		for l := d.maxLen; l >= 1; l-- {
			if i+l > len(tokens) {
				continue
			}
			if d.phrases[strings.Join(lower[i:i+l], " ")] {
				spans = append(spans, Span{
					Type: d.typ, Start: i, End: i + l,
					Text: strings.Join(lower[i:i+l], " "),
				})
				matched = l
				break
			}
		}
		if matched > 0 {
			i += matched
		} else {
			i++
		}
	}
	return spans
}

// Gazetteer accessors: the extractors' dictionaries come from the same
// pools the generator draws entities from, modelling real gazetteers
// compiled from the same domain as the corpus.
func diseasePhrases() []string  { return textgen.Diseases }
func careerPhrases() []string   { return textgen.Careers }
func chargePhrases() []string   { return textgen.Charges }
func locationPhrases() []string { return textgen.Locations }

// orgRecognizer is the automatically-generated-pattern recognizer for
// organizations (Whitelaw et al. in the paper): a maximal run of
// capitalized tokens ending in a known organization suffix.
type orgRecognizer struct {
	suffixes map[string]bool
}

func newOrgRecognizer() *orgRecognizer {
	o := &orgRecognizer{suffixes: make(map[string]bool, len(textgen.OrgSuffixes))}
	for _, s := range textgen.OrgSuffixes {
		o.suffixes[strings.ToLower(s)] = true
	}
	return o
}

func (o *orgRecognizer) Type() string { return "Organization" }

func isCapitalized(tok string) bool {
	r := []rune(tok)
	return len(r) > 0 && unicode.IsUpper(r[0])
}

func (o *orgRecognizer) Recognize(tokens []string) []Span {
	var spans []Span
	for i, tok := range tokens {
		if !o.suffixes[strings.ToLower(tok)] || !isCapitalized(tok) {
			continue
		}
		start := i
		for start > 0 && isCapitalized(tokens[start-1]) &&
			!o.suffixes[strings.ToLower(tokens[start-1])] &&
			!tokenize.IsStopword(strings.ToLower(tokens[start-1])) {
			start--
		}
		if start == i {
			continue // a bare suffix word is not an organization
		}
		spans = append(spans, Span{
			Type: "Organization", Start: start, End: i + 1,
			Text: strings.Join(tokens[start:i+1], " "),
		})
	}
	return spans
}

// temporalRecognizer is the manually-crafted-regular-expression recognizer
// for temporal expressions: "in <Month>", "in early <Month>",
// "last <Weekday>".
type temporalRecognizer struct {
	months, weekdays map[string]bool
}

func newTemporalRecognizer() *temporalRecognizer {
	t := &temporalRecognizer{months: map[string]bool{}, weekdays: map[string]bool{}}
	for _, m := range []string{"january", "february", "march", "april", "may",
		"june", "july", "august", "september", "october", "november", "december"} {
		t.months[m] = true
	}
	for _, w := range []string{"monday", "tuesday", "wednesday", "thursday",
		"friday", "saturday", "sunday"} {
		t.weekdays[w] = true
	}
	return t
}

func (t *temporalRecognizer) Type() string { return "Temporal" }

func (t *temporalRecognizer) Recognize(tokens []string) []Span {
	var spans []Span
	for i := 0; i < len(tokens); i++ {
		low := strings.ToLower(tokens[i])
		switch low {
		case "in":
			if i+1 < len(tokens) && t.months[strings.ToLower(tokens[i+1])] {
				spans = append(spans, Span{Type: "Temporal", Start: i, End: i + 2,
					Text: "in " + tokens[i+1]})
			} else if i+2 < len(tokens) && strings.ToLower(tokens[i+1]) == "early" &&
				t.months[strings.ToLower(tokens[i+2])] {
				spans = append(spans, Span{Type: "Temporal", Start: i, End: i + 3,
					Text: "in early " + tokens[i+2]})
			}
		case "last":
			if i+1 < len(tokens) && t.weekdays[strings.ToLower(tokens[i+1])] {
				spans = append(spans, Span{Type: "Temporal", Start: i, End: i + 2,
					Text: "last " + tokens[i+1]})
			}
		}
	}
	return spans
}

// electionRecognizer finds election mentions: "<modifier> (election|race|vote)"
// noun phrases, per the pattern-based entity recognition style of Section 4.
type electionRecognizer struct {
	heads map[string]bool
}

func newElectionRecognizer() *electionRecognizer {
	return &electionRecognizer{heads: map[string]bool{"election": true, "race": true, "vote": true}}
}

func (e *electionRecognizer) Type() string { return "Election" }

func (e *electionRecognizer) Recognize(tokens []string) []Span {
	var spans []Span
	for i := 1; i < len(tokens); i++ {
		if !e.heads[strings.ToLower(tokens[i])] {
			continue
		}
		mod := strings.ToLower(tokens[i-1])
		if mod == "the" || mod == "a" || mod == "an" || isCapitalized(tokens[i-1]) {
			continue
		}
		spans = append(spans, Span{Type: "Election", Start: i - 1, End: i + 1,
			Text: mod + " " + strings.ToLower(tokens[i])})
	}
	return spans
}

// taggerRecognizer adapts a BIO sequence tagger into a Recognizer.
type taggerRecognizer struct {
	typ string
	tag func(words []string) []string
}

func (t *taggerRecognizer) Type() string { return t.typ }

func (t *taggerRecognizer) Recognize(tokens []string) []Span {
	tags := t.tag(tokens)
	var spans []Span
	for i := 0; i < len(tags); {
		if !strings.HasPrefix(tags[i], "B-") {
			i++
			continue
		}
		j := i + 1
		for j < len(tags) && tags[j] == "I-"+tags[i][2:] {
			j++
		}
		text := strings.Join(tokens[i:j], " ")
		if t.typ != "Person" {
			text = strings.ToLower(text)
		}
		spans = append(spans, Span{Type: t.typ, Start: i, End: j, Text: text})
		i = j
	}
	return spans
}

var (
	personOnce sync.Once
	personRec  Recognizer

	disasterOnce [2]sync.Once
	disasterRec  [2]Recognizer
)

// personHMM returns the shared HMM-based Person recognizer, trained once on
// deterministic synthetic labelled sentences.
func personHMM() Recognizer {
	personOnce.Do(func() {
		sents, tags := personTrainingData(4000, 11)
		hmm := learn.TrainHMM(sents, tags)
		personRec = &taggerRecognizer{typ: "Person", tag: hmm.Tag}
	})
	return personRec
}

// disasterTagger returns the shared perceptron-based disaster mention
// recognizer for ND or MD (the MEMM/CRF stand-ins of Section 4).
func disasterTagger(rel relation.Relation) Recognizer {
	idx := 0
	typ := "NaturalDisaster"
	if rel == relation.MD {
		idx, typ = 1, "ManMadeDisaster"
	}
	disasterOnce[idx].Do(func() {
		sents, tags := disasterTrainingData(rel, 3000, 13+int64(idx))
		p := learn.TrainPerceptron(sents, tags, 4)
		disasterRec[idx] = &taggerRecognizer{typ: typ, tag: p.Tag}
	})
	return disasterRec[idx]
}
