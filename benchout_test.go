package adaptiverank_test

// Machine-readable benchmark output: pass -bench-out FILE to write the
// results of every benchmark that ran as JSON, so CI can archive a
// perf trajectory across commits without scraping the benchmark log.
//
//	go test -bench=. -benchtime=1x -bench-out BENCH_smoke.json
//
// Each benchmark records its final (largest-N) timing via recordBench;
// TestMain writes the file after the run. The flag only exists in this
// root test package — don't pass it to ./internal/... test binaries.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

var benchOut = flag.String("bench-out", "", "write benchmark results as JSON to this file")

// BenchResult is one benchmark's final timing.
type BenchResult struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
	// Elapsed is the total measured time of the final run, nanoseconds.
	Elapsed int64 `json:"elapsed_ns"`
}

// BenchFile is the -bench-out document.
type BenchFile struct {
	Go      string        `json:"go"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	Scale   string        `json:"scale,omitempty"` // ADAPTIVERANK_BENCH
	Results []BenchResult `json:"results"`
}

var (
	benchMu      sync.Mutex
	benchResults = map[string]BenchResult{}
)

// recordBench registers the benchmark with the -bench-out collector. The
// benchmark framework re-invokes the function with growing b.N; Cleanup
// runs after each invocation and the map keeps the last (largest-N)
// measurement per name.
func recordBench(b *testing.B) {
	b.Helper()
	b.Cleanup(func() {
		n := b.N
		if n < 1 {
			n = 1
		}
		el := b.Elapsed()
		benchMu.Lock()
		defer benchMu.Unlock()
		benchResults[b.Name()] = BenchResult{
			Name:    b.Name(),
			N:       b.N,
			NsPerOp: float64(el.Nanoseconds()) / float64(n),
			Elapsed: el.Nanoseconds(),
		}
	})
}

func writeBenchOut(path string) error {
	benchMu.Lock()
	defer benchMu.Unlock()
	doc := BenchFile{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Scale:  os.Getenv("ADAPTIVERANK_BENCH"),
	}
	for _, r := range benchResults {
		doc.Results = append(doc.Results, r)
	}
	sort.Slice(doc.Results, func(i, j int) bool { return doc.Results[i].Name < doc.Results[j].Name })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchOut != "" && code == 0 {
		start := time.Now()
		if err := writeBenchOut(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench-out:", err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "bench-out: %d results written to %s in %v\n",
				len(benchResults), *benchOut, time.Since(start).Round(time.Millisecond))
		}
	}
	os.Exit(code)
}
