package adaptiverank_test

// Machine-readable benchmark output: pass -bench-out FILE to write the
// results of every benchmark that ran as JSON, so CI can archive a
// perf trajectory across commits without scraping the benchmark log.
//
//	go test -bench=. -benchtime=1x -bench-out BENCH_smoke.json
//
// The document schema lives in internal/benchgate, shared with
// cmd/benchgate, which diffs a fresh run against the committed
// BENCH_scoring.json baseline and fails CI on regression. Each benchmark
// records its final (largest-N) timing via recordBench and any gated
// measurements via recordBenchMetric; TestMain writes the file after the
// run. The flag only exists in this root test package — don't pass it to
// ./internal/... test binaries.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptiverank/internal/benchgate"
	"adaptiverank/internal/durable"
)

var benchOut = flag.String("bench-out", "", "write benchmark results as JSON to this file")

var (
	benchMu      sync.Mutex
	benchResults = map[string]benchgate.Result{}
	benchMetrics = map[string]map[string]float64{}
)

// recordBench registers the benchmark with the -bench-out collector. The
// benchmark framework re-invokes the function with growing b.N; Cleanup
// runs after each invocation and the map keeps the last (largest-N)
// measurement per name.
func recordBench(b *testing.B) {
	b.Helper()
	b.Cleanup(func() {
		n := b.N
		if n < 1 {
			n = 1
		}
		el := b.Elapsed()
		benchMu.Lock()
		defer benchMu.Unlock()
		benchResults[b.Name()] = benchgate.Result{
			Name:    b.Name(),
			N:       b.N,
			NsPerOp: float64(el.Nanoseconds()) / float64(n),
			Elapsed: el.Nanoseconds(),
		}
	})
}

// recordBenchMetric reports a custom metric through the benchmark log
// (testing's own output) and mirrors it into the -bench-out document, so
// benchgate parses one uniform schema across BenchmarkTable/Figure
// entries and the scoring microbenches.
//
// Across re-invocations and -count repetitions the collector keeps the
// BEST value per metric — max for rates (names ending "/sec"), min for
// everything else. Benchmark noise on shared hardware is one-sided (the
// scheduler and GC only ever make an op look slower, never faster), so
// best-of-N estimates the true cost and keeps the benchgate threshold a
// statement about real regressions instead of machine jitter. Run with
// -count 3 when producing a gated trajectory.
func recordBenchMetric(b *testing.B, name string, v float64) {
	b.Helper()
	b.ReportMetric(v, name)
	benchMu.Lock()
	defer benchMu.Unlock()
	m := benchMetrics[b.Name()]
	if m == nil {
		m = make(map[string]float64)
		benchMetrics[b.Name()] = m
	}
	old, seen := m[name]
	higherBetter := strings.HasSuffix(name, "/sec")
	if !seen || (higherBetter && v > old) || (!higherBetter && v < old) {
		m[name] = v
	}
}

func writeBenchOut(path string) error {
	benchMu.Lock()
	defer benchMu.Unlock()
	doc := benchgate.File{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      os.Getenv("ADAPTIVERANK_BENCH"),
	}
	// Map iteration order is erased by the sort below; JSON marshalling
	// sorts the metric keys itself.
	for name, r := range benchResults {
		if m := benchMetrics[name]; len(m) > 0 {
			r.Metrics = m
		}
		doc.Results = append(doc.Results, r)
	}
	sort.Slice(doc.Results, func(i, j int) bool { return doc.Results[i].Name < doc.Results[j].Name })
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	// Atomic: benchgate reads this file; a half-written baseline would
	// fail its parse rather than report a regression honestly.
	return durable.WriteFileAtomic(nil, path, buf.Bytes(), 0o644, "bench")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchOut != "" && code == 0 {
		start := time.Now()
		if err := writeBenchOut(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench-out:", err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "bench-out: %d results written to %s in %v\n",
				len(benchResults), *benchOut, time.Since(start).Round(time.Millisecond))
		}
	}
	os.Exit(code)
}
