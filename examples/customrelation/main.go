// Customrelation: plug your own black-box extraction system into the
// adaptive ranking pipeline via adaptiverank.NewExtractor. The custom
// system here extracts "organization sponsored something downtown"
// mentions with a simple pattern — the point is that the ranking layer
// needs nothing beyond the documents-in/tuples-out contract.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"adaptiverank"
)

// extractSponsors is the user-supplied black box: it finds sentences of
// the form "<Org...> sponsored the event downtown" and emits a tuple per
// sponsoring organization.
func extractSponsors(d *adaptiverank.Document) []adaptiverank.Tuple {
	var out []adaptiverank.Tuple
	for _, sent := range strings.Split(d.Text, ".") {
		words := strings.Fields(sent)
		for i, w := range words {
			if w != "sponsored" || i == 0 {
				continue
			}
			// Organization = capitalized run ending right before the verb.
			start := i
			for start > 0 && isCap(words[start-1]) {
				start--
			}
			if start == i {
				continue
			}
			org := strings.Join(words[start:i], " ")
			out = append(out, adaptiverank.Tuple{
				Rel:  adaptiverank.PersonOrganization, // cost/label class
				Arg1: org,
				Arg2: "event sponsorship",
			})
		}
	}
	return out
}

func isCap(w string) bool { return len(w) > 0 && w[0] >= 'A' && w[0] <= 'Z' }

func main() {
	coll, err := adaptiverank.GenerateCorpus(11, 5000)
	if err != nil {
		log.Fatal(err)
	}

	ex := adaptiverank.NewExtractor(
		adaptiverank.PersonOrganization, // closest built-in relation class
		5*time.Millisecond,              // per-document cost of your system
		extractSponsors,
	)

	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{
		Strategy: adaptiverank.RSVMIE,
		Detector: adaptiverank.ModC,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom extractor processed %d documents; %d were useful; %d tuples; %d updates\n",
		res.DocsProcessed, res.UsefulFound, len(res.Tuples), res.Updates)
	for i, t := range res.Tuples {
		if i == 5 {
			break
		}
		fmt.Printf("  <%s, %s>\n", t.Arg1, t.Arg2)
	}
}
