// Disasters: the paper's motivating workload. Natural Disaster–Location
// extraction costs ~6 CPU-seconds per document, so processing a whole
// collection is expensive; this example compares how much simulated
// extraction time each ranking strategy needs to recover 90% of the
// tuples.
package main

import (
	"fmt"
	"log"
	"time"

	"adaptiverank"
)

func main() {
	coll, err := adaptiverank.GenerateCorpus(7, 6000)
	if err != nil {
		log.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.NaturalDisasterLocation)

	// Ground truth for the comparison: how many tuples exist in total.
	// (A one-off full pass; real deployments would not do this.)
	total := map[adaptiverank.Tuple]bool{}
	for _, d := range coll.Docs() {
		for _, t := range ex.Extract(d) {
			total[t] = true
		}
	}
	fmt.Printf("corpus: %d documents, %d distinct ND tuples\n\n", coll.Len(), len(total))

	perDoc := ex.SimulatedCost()
	target := (len(total) * 9) / 10

	for _, cfg := range []struct {
		name string
		opts adaptiverank.Options
	}{
		{"random order", adaptiverank.Options{Strategy: adaptiverank.RandomOrder}},
		{"RSVM-IE base (no adaptation)", adaptiverank.Options{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.NoDetector}},
		{"RSVM-IE + Mod-C (adaptive)", adaptiverank.Options{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC}},
	} {
		res, err := adaptiverank.Run(coll, ex, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		// Walk the processing order and find how many documents were
		// needed to reach 90% of the tuples.
		seen := map[adaptiverank.Tuple]bool{}
		docsNeeded := res.DocsProcessed
		count := res.DocsProcessed - len(res.Order) // the sample prefix
		reached := false
		for _, id := range res.Order {
			count++
			for _, t := range ex.Extract(coll.Doc(id)) {
				seen[t] = true
			}
			if len(seen) >= target {
				docsNeeded = count
				reached = true
				break
			}
		}
		if !reached {
			docsNeeded = count
		}
		simTime := time.Duration(docsNeeded) * perDoc
		fmt.Printf("%-30s %5d docs to reach 90%% of tuples  (~%v of extraction CPU at 6 s/doc)\n",
			cfg.name, docsNeeded, simTime.Round(time.Minute))
	}
	fmt.Println("\nthe adaptive ranker needs a fraction of the extraction budget of a random order")
}
