// Quickstart: run adaptive ranked extraction with the library defaults
// (RSVM-IE ranking + Mod-C update detection) and show how much of the
// extraction output arrives early in the processing order.
package main

import (
	"fmt"
	"log"

	"adaptiverank"
)

func main() {
	// A synthetic news corpus with planted relations; bring your own
	// documents via adaptiverank.NewCollection in real use.
	coll, err := adaptiverank.GenerateCorpus(42, 4000)
	if err != nil {
		log.Fatal(err)
	}

	// The built-in Natural Disaster–Location extraction system: a
	// perceptron disaster tagger, a location gazetteer, and a
	// subsequence-kernel relation classifier. Any Extractor works.
	ex := adaptiverank.BuiltinExtractor(adaptiverank.NaturalDisasterLocation)

	// Default options: adaptive RSVM-IE with Mod-C update detection.
	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d documents, found %d useful ones, %d distinct tuples\n",
		res.DocsProcessed, res.UsefulFound, len(res.Tuples))
	fmt.Printf("the ranking model updated itself %d times along the way\n", res.Updates)
	fmt.Printf("total ranking overhead: %v\n", res.RankingOverhead)

	fmt.Println("\nsample of extracted tuples:")
	for i, t := range res.Tuples {
		if i == 8 {
			break
		}
		fmt.Printf("  %v\n", t)
	}
}
