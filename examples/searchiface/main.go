// Searchiface: the paper's search-interface access scenario (Section 4).
// Instead of ranking a fully accessible collection, the pipeline only sees
// documents retrieved through keyword queries: QXtract-learned queries
// seed the pool, and after every model update the top-100 model features
// are issued as fresh queries to grow it. This example drives the internal
// pipeline directly, mirroring what the experiment harness does.
package main

import (
	"fmt"
	"log"

	"adaptiverank/internal/corpus"
	"adaptiverank/internal/index"
	"adaptiverank/internal/pipeline"
	"adaptiverank/internal/ranking"
	"adaptiverank/internal/relation"
	"adaptiverank/internal/sampling"
	"adaptiverank/internal/textgen"
	"adaptiverank/internal/update"
)

func main() {
	rel := relation.MD // Man Made Disaster–Location

	// Corpus + a TREC-like side collection to learn queries from.
	splits := textgen.GenerateSplits(3, textgen.SplitSizes{
		Train: 300, Dev: 6000, Test: 1000, TRECLike: 2000,
	}, textgen.DefaultConfig(0, 0))
	coll := splits.Dev
	idx := index.Build(coll)
	labels := pipeline.LabelsFor(rel, coll)
	fmt.Printf("collection: %d documents, %d useful for %s\n", coll.Len(), labels.NumUseful(), rel.Name())

	// QXtract-style SVM query learning on the side collection.
	trecLabels := pipeline.LabelsFor(rel, splits.TRECLike)
	queries := sampling.LearnQueries(splits.TRECLike,
		func(d *corpus.Document) bool { return trecLabels.Useful(d.ID) }, 20, 5)
	fmt.Printf("learned %d seed queries, e.g. %v\n", len(queries), queries[:5])

	// Adaptive RSVM-IE over the query-retrieved pool.
	feat := ranking.NewFeaturizer()
	ranker := ranking.NewRSVMIE(ranking.RSVMOptions{Seed: 5})
	res, err := pipeline.Run(pipeline.Options{
		Rel:        rel,
		Coll:       coll,
		Labels:     labels,
		Sample:     sampling.CQS(idx, queries, 400, 20),
		Strategy:   pipeline.NewLearned(ranker, feat),
		Detector:   update.NewModC(ranker, 0.1, 5, 9),
		Featurizer: feat,
		SearchIface: &pipeline.SearchIfaceOptions{
			Index:          idx,
			InitialQueries: queries,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	useful := 0
	for _, u := range res.OrderLabels {
		if u {
			useful++
		}
	}
	fmt.Printf("\npool reached %d documents (of %d in the collection)\n",
		res.PoolSize+res.SampleSize, coll.Len())
	fmt.Printf("processed %d pool documents, found %d useful (plus %d in the sample)\n",
		len(res.Order), useful, res.SampleUseful)
	fmt.Printf("model updates: %d; overall recall %.0f%% of all useful documents\n",
		len(res.UpdatePositions),
		100*float64(useful+res.SampleUseful)/float64(labels.NumUseful()))
	fmt.Println("\nnote: the pool never includes most useless documents — that is the point")
}
