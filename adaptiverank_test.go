package adaptiverank_test

import (
	"strings"
	"testing"
	"time"

	"adaptiverank"
)

func TestRunDefaultsEndToEnd(t *testing.T) {
	coll, err := adaptiverank.GenerateCorpus(42, 1500)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCharge)
	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DocsProcessed != coll.Len() {
		t.Errorf("DocsProcessed = %d, want %d", res.DocsProcessed, coll.Len())
	}
	if res.UsefulFound == 0 {
		t.Error("no useful documents found in a planted corpus")
	}
	if len(res.Tuples) == 0 {
		t.Error("no tuples extracted")
	}
	for _, tu := range res.Tuples {
		if tu.Rel != adaptiverank.PersonCharge {
			t.Fatalf("tuple %v has wrong relation", tu)
		}
	}
}

func TestRunFindsUsefulDocsEarly(t *testing.T) {
	coll, err := adaptiverank.GenerateCorpus(7, 2500)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.ManMadeDisasterLocation)
	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Count useful docs in the first vs the last half of the ranked order.
	half := len(res.Order) / 2
	early, late := 0, 0
	for i, id := range res.Order {
		if len(ex.Extract(coll.Doc(id))) > 0 {
			if i < half {
				early++
			} else {
				late++
			}
		}
	}
	if early <= late {
		t.Errorf("useful docs early=%d late=%d; adaptive ranking failed to front-load", early, late)
	}
}

func TestRunStrategiesAndDetectors(t *testing.T) {
	coll, _ := adaptiverank.GenerateCorpus(3, 800)
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCareer)
	for _, opts := range []adaptiverank.Options{
		{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.TopK},
		{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.WindF},
		{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.FeatS},
		{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.NoDetector},
		{Strategy: adaptiverank.BAggIE, Detector: adaptiverank.ModC},
		{Strategy: adaptiverank.RandomOrder},
	} {
		if _, err := adaptiverank.Run(coll, ex, opts); err != nil {
			t.Errorf("Run(%+v) failed: %v", opts, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	coll, _ := adaptiverank.GenerateCorpus(1, 100)
	ex := adaptiverank.BuiltinExtractor(adaptiverank.ElectionWinner)
	if _, err := adaptiverank.Run(nil, ex, adaptiverank.Options{}); err == nil {
		t.Error("nil collection must fail")
	}
	if _, err := adaptiverank.Run(coll, nil, adaptiverank.Options{}); err == nil {
		t.Error("nil extractor must fail")
	}
	if _, err := adaptiverank.Run(coll, ex, adaptiverank.Options{Strategy: 99}); err == nil {
		t.Error("unknown strategy must fail")
	}
	if _, err := adaptiverank.Run(coll, ex, adaptiverank.Options{Detector: 99}); err == nil {
		t.Error("unknown detector must fail")
	}
	if _, err := adaptiverank.GenerateCorpus(1, 0); err == nil {
		t.Error("zero-size corpus must fail")
	}
}

func TestCustomExtractor(t *testing.T) {
	coll, _ := adaptiverank.GenerateCorpus(9, 600)
	calls := 0
	ex := adaptiverank.NewExtractor(adaptiverank.PersonOrganization, 2*time.Millisecond,
		func(d *adaptiverank.Document) []adaptiverank.Tuple {
			calls++
			if strings.Contains(d.Text, "sponsored") {
				return []adaptiverank.Tuple{{Rel: adaptiverank.PersonOrganization, Arg1: "org", Arg2: "event"}}
			}
			return nil
		})
	if ex.SimulatedCost() != 2*time.Millisecond {
		t.Error("custom cost not preserved")
	}
	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{MaxDocs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("custom extractor never called")
	}
	if res.DocsProcessed == 0 {
		t.Error("nothing processed")
	}
}

func TestMaxDocsLimitsWork(t *testing.T) {
	coll, _ := adaptiverank.GenerateCorpus(11, 1000)
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCareer)
	res, err := adaptiverank.Run(coll, ex, adaptiverank.Options{MaxDocs: 50, SampleSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 50 {
		t.Errorf("ranked-phase docs = %d, want 50", len(res.Order))
	}
	if res.DocsProcessed != 110 {
		t.Errorf("DocsProcessed = %d, want 110 (sample + ranked)", res.DocsProcessed)
	}
}

func TestCorpusJSONLRoundTripThroughFacade(t *testing.T) {
	coll, _ := adaptiverank.GenerateCorpus(21, 40)
	path := t.TempDir() + "/c.jsonl"
	if err := adaptiverank.SaveCorpusJSONL(path, coll); err != nil {
		t.Fatal(err)
	}
	back, err := adaptiverank.LoadCorpusJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != coll.Len() {
		t.Fatalf("round trip: %d != %d", back.Len(), coll.Len())
	}
	// A loaded corpus must be directly usable by Run.
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCareer)
	if _, err := adaptiverank.Run(back, ex, adaptiverank.Options{SampleSize: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWorkersProduceSameTuples(t *testing.T) {
	coll, _ := adaptiverank.GenerateCorpus(31, 900)
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCharge)
	seq, err := adaptiverank.Run(coll, ex, adaptiverank.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := adaptiverank.Run(coll, ex, adaptiverank.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Tuples) != len(par.Tuples) {
		t.Fatalf("tuple counts differ: %d vs %d", len(seq.Tuples), len(par.Tuples))
	}
	for i := range seq.Order {
		if seq.Order[i] != par.Order[i] {
			t.Fatalf("order diverged at %d", i)
		}
	}
}
