package adaptiverank_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"adaptiverank"
	"adaptiverank/internal/obs/blackbox"
	"adaptiverank/internal/obs/prof"
)

// The byte-identical determinism contract: two runs with identical
// options over identically generated corpora must produce exactly the
// same result — the same tuples in the same discovery order, the same
// ranked-phase order, the same update count. This is what makes
// checkpoint/resume verifiable (the journal compares model snapshots
// across sessions) and what the detrand analyzer enforces statically;
// this test enforces it dynamically, serializing the order-sensitive
// parts of the Result the way -result-out does and comparing bytes.

// deterministicResult is the order-sensitive slice of a Result (the
// wall-clock RankingOverhead is measured, not derived, so it is
// excluded by design).
type deterministicResult struct {
	Tuples        []adaptiverank.Tuple
	Order         []adaptiverank.DocID
	Skipped       []adaptiverank.DocID
	DocsProcessed int
	UsefulFound   int
	Updates       int
	Requeued      int
}

func runOnceJSON(t *testing.T, opts adaptiverank.Options) []byte {
	t.Helper()
	coll, err := adaptiverank.GenerateCorpus(11, 900)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCharge)
	res, err := adaptiverank.Run(coll, ex, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(deterministicResult{
		Tuples:        res.Tuples,
		Order:         res.Order,
		Skipped:       res.Skipped,
		DocsProcessed: res.DocsProcessed,
		UsefulFound:   res.UsefulFound,
		Updates:       res.Updates,
		Requeued:      res.Requeued,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunByteIdentical runs every strategy/detector pairing used by the
// experiments twice, with parallel scoring enabled, and requires the
// serialized results to match byte for byte.
func TestRunByteIdentical(t *testing.T) {
	cases := []adaptiverank.Options{
		{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4},
		{Strategy: adaptiverank.BAggIE, Detector: adaptiverank.TopK, Seed: 5, Workers: 4},
	}
	for i, opts := range cases {
		opts := opts
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			t.Parallel()
			first := runOnceJSON(t, opts)
			second := runOnceJSON(t, opts)
			if !bytes.Equal(first, second) {
				t.Errorf("two identical runs diverged:\nrun1: %.200s\nrun2: %.200s", first, second)
			}
		})
	}
}

// TestRunWorkerCountInvariant pins the stronger property the Workers
// doc comment promises: the ranked order does not depend on the number
// of scoring goroutines.
func TestRunWorkerCountInvariant(t *testing.T) {
	seq := runOnceJSON(t, adaptiverank.Options{Seed: 9, Workers: 1})
	par := runOnceJSON(t, adaptiverank.Options{Seed: 9, Workers: 8})
	if !bytes.Equal(seq, par) {
		t.Errorf("1-worker and 8-worker runs diverged:\nw1: %.200s\nw8: %.200s", seq, par)
	}
}

// runOnceInstrumented is runOnceJSON with the full observability stack
// attached: a continuous profiler (CPU windows, snapshots, runtime
// metrics) and a black-box flight recorder tee'd into the run. It also
// sanity-checks that the instrumentation really was live — a silently
// disabled profiler would make the determinism claim vacuous.
func runOnceInstrumented(t *testing.T, opts adaptiverank.Options) []byte {
	t.Helper()
	profDir := t.TempDir()
	profiler, err := prof.Start(prof.Options{
		Dir: profDir, RunID: "determinism", CPUWindow: 150 * time.Millisecond,
		MetricsInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	box, err := blackbox.New(blackbox.Options{Dir: t.TempDir(), RunID: "determinism"})
	if err != nil {
		t.Fatal(err)
	}
	opts.Recorder = adaptiverank.TeeRecorder(box, profiler.Recorder())
	opts.Metrics = adaptiverank.NewMetrics()
	out := runOnceJSON(t, opts)
	if err := profiler.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := prof.ReadManifest(profDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Artifacts) == 0 {
		t.Fatal("profiler wrote no artifacts — instrumentation was not live")
	}
	if box.State().Events == 0 {
		t.Fatal("black-box ring saw no events — instrumentation was not live")
	}
	return out
}

// TestRunByteIdenticalInstrumented re-states the byte-identical contract
// with continuous profiling and the flight recorder enabled: the
// observability stack is a passive tee and must not perturb the result,
// not by a byte, even while CPU profiling windows rotate mid-run. The
// runs are sequential because the runtime allows one CPU profile at a
// time.
func TestRunByteIdenticalInstrumented(t *testing.T) {
	opts := adaptiverank.Options{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4}
	first := runOnceInstrumented(t, opts)
	second := runOnceInstrumented(t, opts)
	if !bytes.Equal(first, second) {
		t.Errorf("two instrumented runs diverged:\nrun1: %.200s\nrun2: %.200s", first, second)
	}
	// The bare-run result must match the instrumented one as well: the
	// tee changes nothing relative to no recorder at all.
	bare := runOnceJSON(t, opts)
	if !bytes.Equal(first, bare) {
		t.Errorf("instrumented run diverged from bare run:\ninst: %.200s\nbare: %.200s", first, bare)
	}
}

// TestRunWorkerCountInvariantInstrumented: worker-count invariance also
// holds under profiling — snapshot timing varies with scheduling, the
// ranked order must not.
func TestRunWorkerCountInvariantInstrumented(t *testing.T) {
	seq := runOnceInstrumented(t, adaptiverank.Options{Seed: 9, Workers: 1})
	par := runOnceInstrumented(t, adaptiverank.Options{Seed: 9, Workers: 8})
	if !bytes.Equal(seq, par) {
		t.Errorf("instrumented 1-worker and 8-worker runs diverged:\nw1: %.200s\nw8: %.200s", seq, par)
	}
}
