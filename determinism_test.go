package adaptiverank_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"adaptiverank"
)

// The byte-identical determinism contract: two runs with identical
// options over identically generated corpora must produce exactly the
// same result — the same tuples in the same discovery order, the same
// ranked-phase order, the same update count. This is what makes
// checkpoint/resume verifiable (the journal compares model snapshots
// across sessions) and what the detrand analyzer enforces statically;
// this test enforces it dynamically, serializing the order-sensitive
// parts of the Result the way -result-out does and comparing bytes.

// deterministicResult is the order-sensitive slice of a Result (the
// wall-clock RankingOverhead is measured, not derived, so it is
// excluded by design).
type deterministicResult struct {
	Tuples        []adaptiverank.Tuple
	Order         []adaptiverank.DocID
	Skipped       []adaptiverank.DocID
	DocsProcessed int
	UsefulFound   int
	Updates       int
	Requeued      int
}

func runOnceJSON(t *testing.T, opts adaptiverank.Options) []byte {
	t.Helper()
	coll, err := adaptiverank.GenerateCorpus(11, 900)
	if err != nil {
		t.Fatal(err)
	}
	ex := adaptiverank.BuiltinExtractor(adaptiverank.PersonCharge)
	res, err := adaptiverank.Run(coll, ex, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(deterministicResult{
		Tuples:        res.Tuples,
		Order:         res.Order,
		Skipped:       res.Skipped,
		DocsProcessed: res.DocsProcessed,
		UsefulFound:   res.UsefulFound,
		Updates:       res.Updates,
		Requeued:      res.Requeued,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunByteIdentical runs every strategy/detector pairing used by the
// experiments twice, with parallel scoring enabled, and requires the
// serialized results to match byte for byte.
func TestRunByteIdentical(t *testing.T) {
	cases := []adaptiverank.Options{
		{Strategy: adaptiverank.RSVMIE, Detector: adaptiverank.ModC, Seed: 5, Workers: 4},
		{Strategy: adaptiverank.BAggIE, Detector: adaptiverank.TopK, Seed: 5, Workers: 4},
	}
	for i, opts := range cases {
		opts := opts
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			t.Parallel()
			first := runOnceJSON(t, opts)
			second := runOnceJSON(t, opts)
			if !bytes.Equal(first, second) {
				t.Errorf("two identical runs diverged:\nrun1: %.200s\nrun2: %.200s", first, second)
			}
		})
	}
}

// TestRunWorkerCountInvariant pins the stronger property the Workers
// doc comment promises: the ranked order does not depend on the number
// of scoring goroutines.
func TestRunWorkerCountInvariant(t *testing.T) {
	seq := runOnceJSON(t, adaptiverank.Options{Seed: 9, Workers: 1})
	par := runOnceJSON(t, adaptiverank.Options{Seed: 9, Workers: 8})
	if !bytes.Equal(seq, par) {
		t.Errorf("1-worker and 8-worker runs diverged:\nw1: %.200s\nw8: %.200s", seq, par)
	}
}
